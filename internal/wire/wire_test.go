package wire

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"github.com/fastba/fastba/internal/ae"
	"github.com/fastba/fastba/internal/baseline"
	"github.com/fastba/fastba/internal/bitstring"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/prng"
	"github.com/fastba/fastba/internal/simnet"
)

// allMessages returns one instance of every wire-encodable message type.
func allMessages(t *testing.T) []simnet.Message {
	t.Helper()
	src := prng.New(1)
	s := bitstring.Random(src, 40)
	seg := bitstring.Random(src, 28)
	return []simnet.Message{
		core.MsgPush{S: s},
		core.MsgPoll{S: s, R: 0x1122334455667788},
		core.MsgPull{S: s, R: 42},
		core.MsgFw1{X: 7, S: s, R: 99, W: 12},
		core.MsgFw2{X: 7, S: s, R: 99},
		core.MsgAnswer{S: s, R: 99},
		ae.MsgElect{Bin: 3, Seg: seg},
		ae.MsgValue{Level: 2, Index: 5, S: s},
		baseline.MsgQuery{},
		baseline.MsgReply{S: s},
		baseline.MsgBcast{S: s},
		baseline.MsgVote{Round: 4, S: s},
		simnet.InstMsg{Inst: 0, Inner: core.MsgPush{S: s}},
		simnet.InstMsg{Inst: 0xDEADBEEF, Inner: core.MsgFw1{X: 7, S: s, R: 99, W: 12}},
		simnet.InstMsg{Inst: 3, Inner: baseline.MsgQuery{}},
		simnet.CatchupReq{From: 0x1020304050607080, Max: 256},
		simnet.CatchupResp{},
		simnet.CatchupResp{Records: [][]byte{{0xab}, {}, {1, 2, 3, 4, 5}}},
		simnet.LogOpen{Seq: 0x0807060504030201},
		simnet.LogOpen{Seq: 17, Payloads: [][]byte{{0xfe, 0xed}, {}, {9, 8, 7}}},
		simnet.Ping{Nonce: 0x0102030405060708},
		simnet.Pong{Nonce: 0x8877665544332211},
	}
}

// TestNestedInstMsgRejected: the multiplexing envelope must not nest —
// a nested tag would silently shadow the outer instance.
func TestNestedInstMsgRejected(t *testing.T) {
	src := prng.New(2)
	s := bitstring.Random(src, 16)
	nested := simnet.InstMsg{Inst: 1, Inner: simnet.InstMsg{Inst: 2, Inner: core.MsgPush{S: s}}}
	if _, err := Marshal(nested); err == nil {
		t.Fatal("Marshal accepted a nested InstMsg")
	}
	// And on the decode side: an inner kind byte naming the envelope
	// itself is rejected.
	inner, err := Marshal(core.MsgPush{S: s})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 0, 0, 0, 0x30}
	payload = append(payload, inner...)
	if _, err := Unmarshal(0x30, payload); err == nil {
		t.Fatal("Unmarshal accepted a nested InstMsg")
	}
}

func TestMarshalLengthMatchesWireSize(t *testing.T) {
	// The contract that keeps the simulation's bit metering honest.
	for _, m := range allMessages(t) {
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if len(buf) != m.WireSize() {
			t.Errorf("%T: encoded %d bytes, WireSize %d", m, len(buf), m.WireSize())
		}
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, m := range allMessages(t) {
		kind, err := KindByte(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		buf, err := Marshal(m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := Unmarshal(kind, buf)
		if err != nil {
			t.Fatalf("%T: unmarshal: %v", m, err)
		}
		if !messagesEqual(m, got) {
			t.Errorf("%T: round trip mismatch: %#v != %#v", m, m, got)
		}
	}
}

// messagesEqual compares two messages by re-encoding (strings are
// immutable values; byte-level equality is exact).
func messagesEqual(a, b simnet.Message) bool {
	ab, errA := Marshal(a)
	bb, errB := Marshal(b)
	ka, _ := KindByte(a)
	kb, _ := KindByte(b)
	return errA == nil && errB == nil && ka == kb && bytes.Equal(ab, bb)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, m := range allMessages(t) {
		frame, err := EncodeEnvelope(3, 250, m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		if len(frame) != EnvelopeOverhead+m.WireSize() {
			t.Errorf("%T: frame %d bytes, want %d", m, len(frame), EnvelopeOverhead+m.WireSize())
		}
		from, to, got, err := DecodeEnvelope(frame)
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		if from != 3 || to != 250 || !messagesEqual(m, got) {
			t.Errorf("%T: envelope mismatch from=%d to=%d", m, from, to)
		}
	}
}

func TestUnknownMessage(t *testing.T) {
	if _, err := Marshal(fakeMsg{}); err == nil {
		t.Fatal("Marshal accepted unknown type")
	}
	if _, err := KindByte(fakeMsg{}); err == nil {
		t.Fatal("KindByte accepted unknown type")
	}
	if _, err := Unmarshal(0xFF, nil); err == nil {
		t.Fatal("Unmarshal accepted unknown kind")
	}
	if _, err := EncodeEnvelope(0, 0, fakeMsg{}); err == nil {
		t.Fatal("EncodeEnvelope accepted unknown type")
	}
}

type fakeMsg struct{}

func (fakeMsg) WireSize() int { return 0 }
func (fakeMsg) Kind() string  { return "fake" }

func TestTruncatedPayloadsRejected(t *testing.T) {
	for _, m := range allMessages(t) {
		kind, _ := KindByte(m)
		buf, _ := Marshal(m)
		for cut := 0; cut < len(buf); cut++ {
			if _, err := Unmarshal(kind, buf[:cut]); err == nil {
				t.Errorf("%T: truncation to %d bytes accepted", m, cut)
			}
		}
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	for _, m := range allMessages(t) {
		kind, _ := KindByte(m)
		buf, _ := Marshal(m)
		if _, err := Unmarshal(kind, append(buf, 0xEE)); err == nil {
			t.Errorf("%T: trailing garbage accepted", m)
		}
	}
}

func TestShortEnvelopeRejected(t *testing.T) {
	if _, _, _, err := DecodeEnvelope([]byte{1, 2, 3}); err == nil {
		t.Fatal("short envelope accepted")
	}
}

func TestQuickPushRoundTrip(t *testing.T) {
	src := prng.New(9)
	f := func(nbits16 uint16, r uint64) bool {
		nbits := int(nbits16%512) + 1
		s := bitstring.Random(src, nbits)
		m := core.MsgPoll{S: s, R: r}
		buf, err := Marshal(m)
		if err != nil || len(buf) != m.WireSize() {
			return false
		}
		got, err := Unmarshal(kindPoll, buf)
		if err != nil {
			return false
		}
		poll, ok := got.(core.MsgPoll)
		return ok && poll.S.Equal(s) && poll.R == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFw1RoundTrip(t *testing.T) {
	src := prng.New(10)
	f := func(x, w uint16, r uint64) bool {
		s := bitstring.Random(src, 40)
		m := core.MsgFw1{X: int(x), W: int(w), R: r, S: s}
		buf, err := Marshal(m)
		if err != nil {
			return false
		}
		got, err := Unmarshal(kindFw1, buf)
		if err != nil {
			return false
		}
		fw, ok := got.(core.MsgFw1)
		return ok && fw.X == int(x) && fw.W == int(w) && fw.R == r && fw.S.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindBytesDistinct(t *testing.T) {
	// One kind byte per message TYPE (allMessages may carry several
	// instances of one type, e.g. InstMsg variants).
	seen := map[byte]string{}
	for _, m := range allMessages(t) {
		k, err := KindByte(m)
		if err != nil {
			t.Fatal(err)
		}
		typ := fmt.Sprintf("%T", m)
		if prev, dup := seen[k]; dup && prev != typ {
			t.Fatalf("kind byte %#x shared by %s and %s", k, prev, typ)
		}
		seen[k] = typ
	}
}
