package fastba

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/metrics"
	"github.com/fastba/fastba/internal/prng"
)

// The sustained-load harness: drive a DecisionLog with concurrent clients
// for a fixed duration and report throughput and commit-latency
// percentiles. This is the workload family nothing single-shot can
// express — steady-state ingest, bursty open-loop rates, fault plans
// under load — and the Workload axis plugs it into the experiment suite
// (Sweep.Workloads, KindLog).

// Workload shapes one sustained-load run.
type Workload struct {
	// Clients is the number of concurrent proposers (default 4).
	Clients int `json:"clients"`
	// Rate is each client's open-loop proposal rate in payloads/second;
	// 0 runs closed-loop (propose as fast as backpressure admits).
	Rate float64 `json:"rate,omitempty"`
	// PayloadBytes sizes each proposed payload (default 32).
	PayloadBytes int `json:"payloadBytes"`
	// Duration bounds the proposing phase (default 2s); commits still in
	// the pipeline when it ends are drained by the log's Close.
	Duration time.Duration `json:"durationNs"`
	// Restarts crash-and-recovers the log this many times during the run,
	// splitting Duration into Restarts+1 equal legs: at each boundary the
	// log is hard-crashed (no final fsync), reopened from its store
	// directory, and the recovered log is checked against the pre-crash
	// committed prefix (OracleLogDurability). Requires WithLogStore.
	Restarts int `json:"restarts,omitempty"`
}

// withDefaults fills the zero fields.
func (w Workload) withDefaults() Workload {
	if w.Clients <= 0 {
		w.Clients = 4
	}
	if w.PayloadBytes <= 0 {
		w.PayloadBytes = 32
	}
	if w.Duration <= 0 {
		w.Duration = 2 * time.Second
	}
	return w
}

// Label renders the compact cell label of the workload axis.
func (w Workload) Label() string {
	w = w.withDefaults()
	rate := "max"
	if w.Rate > 0 {
		rate = fmt.Sprintf("%g/s", w.Rate)
	}
	label := fmt.Sprintf("c%d·%s·%dB·%s", w.Clients, rate, w.PayloadBytes, w.Duration)
	if w.Restarts > 0 {
		label += fmt.Sprintf("·r%d", w.Restarts)
	}
	return label
}

// WithWorkload sets the load-harness workload (RunLoad, Sweep.Workloads).
func WithWorkload(w Workload) Option {
	return optionFunc(func(c *Config) { c.workload = w })
}

// LatencyHistogramEdges returns the bounded commit-latency histogram
// edges, in milliseconds (renderers need them to label the unbounded
// final bucket). The edges are shared with the daemon's /metrics latency
// series (metrics.LatencyBucketsMs), so result histograms and scraped
// histograms are directly comparable.
func LatencyHistogramEdges() []float64 {
	return append([]float64(nil), metrics.LatencyBucketsMs...)
}

// HistBucket is one commit-latency histogram bucket.
type HistBucket struct {
	// UpToMs is the bucket's inclusive upper edge in milliseconds; the
	// final bucket has UpToMs 0, meaning unbounded.
	UpToMs float64 `json:"upToMs"`
	Count  int     `json:"count"`
}

// latencyHistogram buckets latencies (in ms) over the shared edges.
func latencyHistogram(ms []float64) []HistBucket {
	if len(ms) == 0 {
		return nil
	}
	edges := metrics.LatencyBucketsMs
	hist := make([]HistBucket, len(edges)+1)
	for i, edge := range edges {
		hist[i].UpToMs = edge
	}
	for _, v := range ms {
		placed := false
		for i, edge := range edges {
			if v <= edge {
				hist[i].Count++
				placed = true
				break
			}
		}
		if !placed {
			hist[len(hist)-1].Count++
		}
	}
	return hist
}

// LoadResult reports one sustained-load run.
type LoadResult struct {
	// Workload and Runtime identify the run; Depth is the pipelining
	// depth it ran at.
	Workload Workload `json:"workload"`
	Runtime  string   `json:"runtime"`
	Depth    int      `json:"depth"`
	// Proposed counts payloads accepted from clients; CommittedPayloads
	// of them reached a committed entry; Committed counts entries.
	Proposed          int `json:"proposed"`
	CommittedPayloads int `json:"committedPayloads"`
	Committed         int `json:"committed"`
	// Elapsed is the wall time from the first proposal to the end of the
	// drain (Close returning).
	Elapsed time.Duration `json:"elapsedNs"`
	// EntriesPerSec and PayloadsPerSec are committed throughput over
	// Elapsed.
	EntriesPerSec  float64 `json:"entriesPerSec"`
	PayloadsPerSec float64 `json:"payloadsPerSec"`
	// CommitP50/P99 are submit-to-commit latency percentiles over
	// committed payloads; Hist is the full histogram.
	CommitP50 time.Duration `json:"commitP50Ns"`
	CommitP99 time.Duration `json:"commitP99Ns"`
	Hist      []HistBucket  `json:"hist,omitempty"`
	// Restarts counts the crash/recover cycles performed; Recovered is the
	// total number of committed entries seeded back from the store across
	// all reopens. Zero for in-memory runs.
	Restarts  int `json:"restarts,omitempty"`
	Recovered int `json:"recovered,omitempty"`
	// Net accumulates the TCP transport's connection-supervision counters
	// across all restart legs (zero for fabric runs): dial/redial churn,
	// failure-detector transitions, shed frames, chaos strikes.
	Net NetStats `json:"net,omitempty"`
	// Oracles is the cross-instance invariant verdict on the committed
	// log, including the durability oracle when the run restarted.
	Oracles OracleReport `json:"oracles"`
	// Err carries the log's fatal error, if any (e.g. a lossy plan
	// stalling the head instance past the timeout). A run with Err can
	// still hold a useful committed prefix.
	Err string `json:"err,omitempty"`
}

// RunLoad drives a DecisionLog with the configured Workload: Clients
// concurrent proposers for Duration, then a draining Close, then
// invariant checking. The log's shape (runtime, depth, batch, linger,
// faults, population) comes from the same options every other entry
// point uses. With Workload.Restarts > 0 (and a log store configured)
// the run is split into restart legs: at each boundary the log hard-
// crashes, reopens from its store directory, and the recovered prefix
// is checked for durability before the next leg's clients start.
func RunLoad(ctx context.Context, cfg Config) (*LoadResult, error) {
	w := cfg.workload.withDefaults()
	legs := 1
	if w.Restarts > 0 {
		if cfg.storeDir == "" {
			return nil, fmt.Errorf("fastba: Workload.Restarts requires a durable log (WithLogStore)")
		}
		legs = w.Restarts + 1
	}
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		return nil, err
	}
	depth := cfg.logDepth
	if depth <= 0 {
		depth = 1
	}
	res := &LoadResult{Workload: w, Runtime: log.Runtime().String(), Depth: depth}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		pending   []*Ticket // tickets still unresolved when their client stopped
		latencies []float64 // submit-to-commit, ms, harvested as tickets resolve
		committed int
		proposed  int
	)
	legDur := w.Duration / time.Duration(legs)
	runLeg := func(clientCtx context.Context, log *DecisionLog, leg int) {
		for c := 0; c < w.Clients; c++ {
			wg.Add(1)
			go func(client int) {
				defer wg.Done()
				// Leg 0 keeps the original per-client key so durable runs
				// replay the same leading proposal stream as in-memory ones;
				// later legs derive fresh streams.
				key := uint64(client)
				if leg > 0 {
					key = uint64(leg)<<32 | uint64(client)
				}
				src := prng.New(prng.DeriveKey(cfg.seed, "load/client", key))
				payload := make([]byte, w.PayloadBytes)
				var pacer *time.Timer
				if w.Rate > 0 {
					// One reused timer per client: a fresh time.After per
					// proposal would churn the timer heap inside the very
					// harness that measures latency.
					pacer = time.NewTimer(time.Duration(float64(time.Second) / w.Rate))
					defer pacer.Stop()
				}
				// Tickets are harvested as they resolve, so the client retains
				// only its in-flight window (bounded by depth × batch plus the
				// ingest buffer) instead of one Ticket per payload for the
				// whole run — the harness must not let measurement state
				// perturb the latencies it measures.
				var mine []*Ticket
				var lats []float64
				resolvedHits := 0
				harvest := func() {
					kept := mine[:0]
					for _, t := range mine {
						if _, lat, ok := t.resolved(); ok {
							lats = append(lats, float64(lat)/float64(time.Millisecond))
							resolvedHits++
						} else if t.failed() {
							// resolved with an error: drop it
						} else {
							kept = append(kept, t)
						}
					}
					mine = kept
				}
				count := 0
				for clientCtx.Err() == nil {
					for i := range payload {
						payload[i] = byte(src.Uint64())
					}
					t, err := log.Propose(clientCtx, append([]byte(nil), payload...))
					if err != nil {
						break
					}
					mine = append(mine, t)
					count++
					if len(mine) >= 64 {
						harvest()
					}
					if pacer != nil {
						select {
						case <-clientCtx.Done():
						case <-pacer.C:
							pacer.Reset(time.Duration(float64(time.Second) / w.Rate))
						}
					}
				}
				harvest()
				mu.Lock()
				pending = append(pending, mine...)
				latencies = append(latencies, lats...)
				committed += resolvedHits
				proposed += count
				mu.Unlock()
			}(c)
		}
		wg.Wait()
	}

	start := time.Now()
	var durability []Violation
	for leg := 0; leg < legs; leg++ {
		clientCtx, stopClients := context.WithTimeout(ctx, legDur)
		runLeg(clientCtx, log, leg)
		stopClients()
		if leg == legs-1 {
			break
		}
		// Restart boundary: hard-crash (no final fsync — kill -9
		// semantics), reopen from the same store directory, and require
		// the recovered log to extend everything committed before the
		// crash. Net counters die with the crashed cluster; bank them.
		before := log.Committed()
		log.Crash()
		res.Net.Add(log.NetStats()) // bank the dead cluster's counters
		log, err = OpenLog(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("fastba: reopen after restart %d: %w", leg+1, err)
		}
		res.Restarts++
		res.Recovered += log.Recovered()
		if rep := CheckLogDurability(before, log.Committed()); !rep.OK() {
			durability = append(durability, rep.Violations...)
		}
	}
	closeErr := log.Close()
	res.Net.Add(log.NetStats()) // counters survive shutdown; read after the drain
	res.Elapsed = time.Since(start)
	res.Proposed = proposed
	if closeErr != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if closeErr != nil {
		res.Err = closeErr.Error()
	}

	entries := log.Committed()
	res.Committed = len(entries)
	// Final sweep: tickets still outstanding when their client stopped
	// resolved (or failed) during the draining Close above.
	for _, t := range pending {
		if _, lat, ok := t.resolved(); ok {
			committed++
			latencies = append(latencies, float64(lat)/float64(time.Millisecond))
		}
	}
	res.CommittedPayloads = committed
	if secs := res.Elapsed.Seconds(); secs > 0 {
		res.EntriesPerSec = float64(res.Committed) / secs
		res.PayloadsPerSec = float64(res.CommittedPayloads) / secs
	}
	if len(latencies) > 0 {
		res.CommitP50 = time.Duration(metrics.Quantile(latencies, 0.5) * float64(time.Millisecond))
		res.CommitP99 = time.Duration(metrics.Quantile(latencies, 0.99) * float64(time.Millisecond))
		res.Hist = latencyHistogram(latencies)
	}
	res.Oracles = CheckLogInvariants(entries, cfg.knowFrac)
	if res.Restarts > 0 {
		res.Oracles.Checked = append(res.Oracles.Checked, OracleLogDurability)
		sort.Strings(res.Oracles.Checked)
		res.Oracles.Violations = append(res.Oracles.Violations, durability...)
	}
	exportLoadMetrics(cfg.metricsReg, res, latencies)
	return res, nil
}
