package fastba

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/pipeline"
	"github.com/fastba/fastba/internal/store"
)

// ErrLogClosed reports an operation on a cleanly closed decision log.
// It is distinct from the error of a log that failed or was aborted:
// cancelling OpenLog's context surfaces the context's error
// (context.Canceled / DeadlineExceeded), never this sentinel — so
// callers can tell "we closed it" from "it was torn down under us".
var ErrLogClosed = errors.New("fastba: decision log closed")

// The decision log: agreement as a service. RunAER decides one value; a
// DecisionLog runs an unbounded sequence of AER instances back-to-back
// over one long-lived transport, folding client proposals into per-
// instance batch values, pipelining up to Depth instances over
// instance-tagged envelopes, and committing instances strictly in
// sequence order. See DESIGN.md §7 for what the paper's single-shot
// guarantees do and do not promise across instances.

// LogRuntime selects the transport a DecisionLog runs on.
type LogRuntime int

// Decision-log runtimes.
const (
	// RuntimeFabric is the in-process loopback fabric: one goroutine per
	// node over batched mailboxes (the Goroutines model's substrate).
	RuntimeFabric LogRuntime = iota + 1
	// RuntimeTCP runs the same nodes over real loopback TCP sockets
	// (internal/netrun): one listener per node, lazily dialed mesh.
	RuntimeTCP
)

// String implements fmt.Stringer.
func (r LogRuntime) String() string {
	switch r {
	case RuntimeFabric:
		return "fabric"
	case RuntimeTCP:
		return "tcp"
	default:
		return fmt.Sprintf("LogRuntime(%d)", int(r))
	}
}

// ParseLogRuntime maps a runtime's String name back to its value.
func ParseLogRuntime(s string) (LogRuntime, error) {
	for _, r := range []LogRuntime{RuntimeFabric, RuntimeTCP} {
		if s == r.String() {
			return r, nil
		}
	}
	return 0, fmt.Errorf("fastba: unknown log runtime %q", s)
}

// LogEntry is one committed decision-log record.
type LogEntry struct {
	// Seq is the instance sequence number; a gap-free log commits
	// contiguous seqs from 0.
	Seq uint64 `json:"seq"`
	// Value is the hex encoding of the decided value — the digest of the
	// batch the instance agreed on.
	Value string `json:"value"`
	// Payloads are the client payloads folded into the instance.
	Payloads [][]byte `json:"-"`
	// PayloadCount is len(Payloads) (serialized in place of the payload
	// bytes).
	PayloadCount int `json:"payloads"`
	// Deciders of Correct correct nodes had decided when the instance
	// committed.
	Deciders int `json:"deciders"`
	Correct  int `json:"correct"`
	// DistinctValues counts distinct decided values among the deciders
	// (> 1 is a log-agreement violation); CertDeficits counts deciders
	// without a re-derivable quorum certificate (must stay 0);
	// MatchesProposal reports that the decided value is the proposed batch
	// digest (the validity probe).
	DistinctValues  int  `json:"distinctValues"`
	CertDeficits    int  `json:"certDeficits,omitempty"`
	MatchesProposal bool `json:"matchesProposal"`
	// Latency is the open-to-commit duration of the instance.
	Latency time.Duration `json:"latencyNs"`
}

// logEntry converts the engine's record to the public form.
func logEntry(e pipeline.Entry) LogEntry {
	return LogEntry{
		Seq:             e.Seq,
		Value:           hex.EncodeToString(e.Value.Bytes()),
		Payloads:        e.Payloads,
		PayloadCount:    len(e.Payloads),
		Deciders:        e.Deciders,
		Correct:         e.Correct,
		DistinctValues:  e.DistinctValues,
		CertDeficits:    e.CertDeficits,
		MatchesProposal: e.MatchesProposal,
		Latency:         e.Committed.Sub(e.Opened),
	}
}

// Ticket tracks one proposed payload through batching and commit.
type Ticket struct {
	submitted  time.Time
	resolvedAt time.Time
	done       chan struct{}
	entry      LogEntry
	err        error
}

// Wait blocks until the payload's instance commits (or the log fails) and
// returns the committed entry.
func (t *Ticket) Wait(ctx context.Context) (LogEntry, error) {
	select {
	case <-t.done:
		return t.entry, t.err
	case <-ctx.Done():
		return LogEntry{}, ctx.Err()
	}
}

// resolved reports the commit non-blockingly: the entry, the submit-to-
// commit latency, and whether the ticket resolved successfully.
func (t *Ticket) resolved() (LogEntry, time.Duration, bool) {
	select {
	case <-t.done:
	default:
		return LogEntry{}, 0, false
	}
	if t.err != nil {
		return LogEntry{}, 0, false
	}
	return t.entry, t.resolvedAt.Sub(t.submitted), true
}

// failed reports non-blockingly that the ticket resolved with an error.
func (t *Ticket) failed() bool {
	select {
	case <-t.done:
	default:
		return false
	}
	return t.err != nil
}

// proposal is one queued client payload.
type proposal struct {
	payload []byte
	ticket  *Ticket
}

// DecisionLog is a pipelined multi-instance decision log. Open one with
// OpenLog, feed it with Propose (batched client ingest) or Append
// (explicit deterministic batches), and Close it to flush and tear the
// transport down.
//
// Byzantine model: the log's corrupt nodes are fail-silent for its whole
// lifetime (the registry adversaries target single-shot runs); hostility
// beyond silence comes from the fault plan (WithFaults), which applies to
// every instance's traffic on the shared transport.
type DecisionLog struct {
	cfg     Config
	eng     *pipeline.Engine
	runtime LogRuntime
	batch   int
	linger  time.Duration
	// st is the durable commit store (WithLogStore); nil runs in-memory.
	st *store.Store

	ingest chan proposal
	// closeCh tells the batcher (and blocked Propose calls) that Close
	// started; the ingest channel itself is never closed, so a racing
	// Propose can never panic on a closed send.
	closeCh     chan struct{}
	batcherDone chan struct{}
	// shutdown releases the failure watcher once Close has resolved every
	// ticket itself.
	shutdown  chan struct{}
	stopWatch func() bool

	mu        sync.Mutex
	tickets   map[uint64][]*Ticket // per-seq tickets awaiting commit
	closed    bool
	proposers sync.WaitGroup // in-flight Propose calls (entered before closed flips)

	closeOnce sync.Once
	closeErr  error
}

// OpenLog builds and starts a decision log for the configuration: n,
// seed, corruption, knowledge fraction and fault plan come from the usual
// options; the log-specific knobs are WithLogRuntime, WithLogDepth,
// WithLogBatch, WithLogLinger, WithLogCommitFraction and
// WithLogInstanceTimeout. Cancelling ctx aborts the log promptly: open
// instances are abandoned and the transport (including a TCP cluster's
// goroutines) tears down without waiting for Close.
func OpenLog(ctx context.Context, cfg Config, opts ...Option) (*DecisionLog, error) {
	for _, o := range opts {
		o.apply(&cfg)
	}
	// Population and fault-plan validation happens once, in pipeline.New.
	runtime := cfg.logRuntime
	if runtime == 0 {
		runtime = RuntimeFabric
	}
	if runtime != RuntimeFabric && runtime != RuntimeTCP {
		return nil, fmt.Errorf("fastba: unknown log runtime %v", runtime)
	}
	if cfg.net.Chaos.Active() && runtime != RuntimeTCP {
		return nil, fmt.Errorf("fastba: chaos plans sever real sockets; runtime %v has none (use WithLogRuntime(RuntimeTCP))", runtime)
	}
	batch := cfg.logBatch
	if batch <= 0 {
		batch = 64
	}
	linger := cfg.logLinger
	if linger <= 0 {
		linger = 2 * time.Millisecond
	}

	l := &DecisionLog{
		cfg:         cfg,
		runtime:     runtime,
		batch:       batch,
		linger:      linger,
		ingest:      make(chan proposal, 4*batch),
		closeCh:     make(chan struct{}),
		batcherDone: make(chan struct{}),
		shutdown:    make(chan struct{}),
		tickets:     make(map[uint64][]*Ticket),
	}
	if cfg.storeDir != "" {
		st, err := store.Open(cfg.storeDir, store.Options{
			SyncWindow:    cfg.storeSync,
			SnapshotEvery: cfg.storeSnapEvery,
		})
		if err != nil {
			return nil, err
		}
		// Catch-up before the engine exists: fetch the committed prefix
		// the WAL is missing from the configured peer and persist it, so
		// the engine seeds from a complete prefix and new instances open
		// past it.
		if err := catchUp(st, cfg); err != nil {
			st.Close()
			return nil, err
		}
		l.st = st
	}
	eng, err := pipeline.New(pipeline.Config{
		N:               cfg.n,
		Params:          cfg.params,
		Seed:            cfg.seed,
		CorruptFrac:     cfg.corruptFrac,
		KnowFrac:        cfg.knowFrac,
		Depth:           cfg.logDepth,
		CommitFraction:  cfg.logCommitFrac,
		InstanceTimeout: cfg.logTimeout,
		Faults:          cfg.faults,
		Net:             cfg.net,
		DisablePool:     cfg.logNaive,
		OnCommit:        l.onCommit,
		Store:           l.st,
	})
	if err != nil {
		if l.st != nil {
			l.st.Close()
		}
		return nil, err
	}
	l.eng = eng
	switch runtime {
	case RuntimeFabric:
		eng.StartFabric()
	case RuntimeTCP:
		if err := eng.StartTCP(); err != nil {
			if l.st != nil {
				l.st.Close()
			}
			return nil, err
		}
	}
	// Propagate cancellation into transport teardown: a cancelled
	// long-lived run must not leave netrun accept/read goroutines behind.
	l.stopWatch = context.AfterFunc(ctx, eng.Abort)
	go l.batcher()
	// Resolve outstanding tickets promptly when the engine fails (an
	// instance timeout, a cancellation) instead of leaving Ticket.Wait
	// blocked until Close.
	go func() {
		select {
		case <-eng.Failed():
			l.failTickets(eng.Err())
		case <-l.shutdown:
		}
	}()
	return l, nil
}

// Runtime returns the transport the log runs on.
func (l *DecisionLog) Runtime() LogRuntime { return l.runtime }

// Correct returns the number of correct nodes in the log's population.
func (l *DecisionLog) Correct() int { return l.eng.Correct() }

// Propose submits one client payload: it joins the batcher's pending set
// and is folded into the next instance's value. Propose blocks for
// backpressure when the ingest buffer is full (the pipeline is at Depth
// and a full batch is already waiting). The returned Ticket resolves when
// the payload's instance commits, or with an error when the log fails or
// closes first.
func (l *DecisionLog) Propose(ctx context.Context, payload []byte) (*Ticket, error) {
	// Enter the proposer set under the lock: once Close flips the flag no
	// new proposer starts, and Close waits out everyone already inside —
	// so the batcher keeps consuming until every blocked send below has
	// finished, and the ingest channel never needs closing.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, l.appendErr()
	}
	l.proposers.Add(1)
	l.mu.Unlock()
	defer l.proposers.Done()

	t := &Ticket{submitted: time.Now(), done: make(chan struct{})}
	select {
	case l.ingest <- proposal{payload: payload, ticket: t}:
		return t, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-l.closeCh:
		return nil, l.appendErr()
	case <-l.batcherDone:
		return nil, l.appendErr()
	}
}

// Append opens one instance with exactly the given batch, bypassing the
// batcher — the deterministic ingest path: with a fixed seed and fixed
// batches, the committed log is identical across runtimes (the
// conformance contract). It blocks while the pipeline is at Depth and
// returns the assigned sequence number.
func (l *DecisionLog) Append(ctx context.Context, payloads [][]byte) (uint64, error) {
	seq, err := l.eng.Append(ctx, payloads)
	if errors.Is(err, pipeline.ErrClosed) {
		err = ErrLogClosed
	}
	return seq, err
}

// WaitSeq blocks until instance seq commits and returns its entry.
func (l *DecisionLog) WaitSeq(ctx context.Context, seq uint64) (LogEntry, error) {
	e, err := l.eng.WaitSeq(ctx, seq)
	if err != nil {
		return LogEntry{}, err
	}
	return logEntry(e), nil
}

// Committed snapshots the committed log in sequence order.
func (l *DecisionLog) Committed() []LogEntry {
	raw := l.eng.Entries()
	out := make([]LogEntry, len(raw))
	for i, e := range raw {
		out[i] = logEntry(e)
	}
	return out
}

// Err returns the log's fatal error, if any.
func (l *DecisionLog) Err() error { return l.eng.Err() }

// Close flushes the batcher's pending payloads, waits for every open
// instance to commit (bounded by the instance timeout), tears the
// transport down and returns the log's fatal error, if any.
func (l *DecisionLog) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		// No new proposers can start; wait out the in-flight ones (the
		// batcher is still consuming, so blocked sends finish), then tell
		// the batcher to drain what reached the buffer and stop.
		l.proposers.Wait()
		close(l.closeCh)
		<-l.batcherDone
		l.closeErr = l.eng.Close()
		if l.st != nil {
			// The engine is drained: no commit can still be persisting.
			// (After a Crash the store is already closed and this is a
			// no-op.)
			if serr := l.st.Close(); l.closeErr == nil {
				l.closeErr = serr
			}
		}
		if l.stopWatch != nil {
			l.stopWatch()
		}
		l.failTickets(l.closeErr)
		close(l.shutdown)
	})
	return l.closeErr
}

// Crash hard-stops the log, simulating a process kill: the transport
// aborts mid-flight and the store closes WITHOUT its final fsync —
// whatever the OS already holds of the WAL is what a restart
// (OpenLogAt on the same directory) recovers. Outstanding tickets
// resolve with an error; the durable committed prefix may run ahead of
// what this process surfaced (persist-before-surface), which the
// log-durability oracle's prefix-extension rule accepts.
func (l *DecisionLog) Crash() {
	l.eng.Abort()
	if l.st != nil {
		l.st.Crash()
	}
	l.Close()
}

// Recovered returns how many committed entries were seeded from the
// store's recovered prefix (WAL replay plus catch-up) when the log
// opened; 0 for in-memory or fresh logs.
func (l *DecisionLog) Recovered() int { return l.eng.Recovered() }

// CatchupAddr returns the log's TCP catch-up listener address — the
// value a restarting peer passes to WithCatchupPeer — or "" on the
// fabric runtime (in-process peers use WithCatchupFrom instead).
func (l *DecisionLog) CatchupAddr() string { return l.eng.CatchupAddr() }

// StoreDir returns the durable store's directory ("" when in-memory).
func (l *DecisionLog) StoreDir() string { return l.cfg.storeDir }

// NetStats snapshots the TCP transport's connection-supervision counters
// (dials, redials, suspects, shed frames, chaos strikes). Safe to call
// mid-run; the zero value on the fabric runtime.
func (l *DecisionLog) NetStats() NetStats { return l.eng.NetStats() }

// catchupRecords is the in-process catch-up surface behind
// WithCatchupFrom: one chunk of encoded committed records, served
// through the peer's running transport fabric.
func (l *DecisionLog) catchupRecords(from uint64, max int) ([][]byte, bool) {
	return l.eng.Catchup(from, max)
}

// catchUp fetches the committed records past the store's recovered
// frontier from the configured peer — over TCP (WithCatchupPeer) or
// in-process (WithCatchupFrom) — validates their contiguity, and
// persists them.
func catchUp(st *store.Store, cfg Config) error {
	ingest := func(encoded [][]byte) error {
		recs := make([]store.Record, 0, len(encoded))
		next := st.Frontier()
		for _, b := range encoded {
			r, err := store.DecodeRecord(b)
			if err != nil {
				return fmt.Errorf("fastba: catch-up record: %w", err)
			}
			if r.Seq != next {
				return fmt.Errorf("fastba: catch-up peer sent seq %d, expected %d", r.Seq, next)
			}
			recs = append(recs, r)
			next++
		}
		return st.AppendBatch(recs)
	}
	switch {
	case cfg.catchupAddr != "":
		encoded, err := netrun.FetchCatchup(cfg.catchupAddr, st.Frontier(), cfg.net.DialTimeout)
		if err != nil {
			return err
		}
		return ingest(encoded)
	case cfg.catchupPeer != nil:
		for {
			chunk, ok := cfg.catchupPeer.catchupRecords(st.Frontier(), 256)
			if !ok {
				return fmt.Errorf("fastba: catch-up peer is not serving (no running fabric)")
			}
			if len(chunk) == 0 {
				return nil
			}
			if err := ingest(chunk); err != nil {
				return err
			}
		}
	default:
		return nil
	}
}

// appendErr describes why ingestion stopped: the engine's fatal error
// when it failed or was aborted (context cancellation surfaces the
// context's error here), ErrLogClosed after a clean Close.
func (l *DecisionLog) appendErr() error {
	if err := l.eng.Err(); err != nil {
		return err
	}
	return ErrLogClosed
}

// batcher folds queued proposals into instances: a batch opens when it
// reaches the batch size or when the linger timer expires with at least
// one payload pending. Slot backpressure happens inside Append.
func (l *DecisionLog) batcher() {
	defer close(l.batcherDone)
	var (
		payloads [][]byte
		tickets  []*Ticket
		timer    *time.Timer
		timerC   <-chan time.Time
	)
	ship := func() {
		if len(payloads) == 0 {
			return
		}
		batch, batchTickets := payloads, tickets
		payloads, tickets = nil, nil
		if timerC != nil {
			// The linger tick is unconsumed: if Stop loses the race with
			// the firing, drain the tick so the next Reset does not fire
			// instantly and cut a premature one-payload batch.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerC = nil
		}
		seq, err := l.eng.Append(context.Background(), batch)
		if err != nil {
			for _, t := range batchTickets {
				t.err = err
				close(t.done)
			}
			return
		}
		l.mu.Lock()
		l.tickets[seq] = batchTickets
		l.mu.Unlock()
		// The instance may have committed between Append returning and the
		// registration above, in which case onCommit found nothing to
		// resolve; re-check so the tickets never dangle. resolveSeq pulls
		// tickets out of the map under the lock, so the commit callback
		// and this re-check resolve each ticket exactly once.
		if e, ok := l.eng.CommittedSeq(seq); ok {
			l.resolveSeq(seq, logEntry(e))
		} else if err := l.eng.Err(); err != nil {
			// Same window on the failure side: the engine may have failed
			// between Append and registration, before the failure watcher
			// could see these tickets.
			l.failTickets(err)
		}
	}
	collect := func(p proposal) {
		payloads = append(payloads, p.payload)
		tickets = append(tickets, p.ticket)
		if len(payloads) >= l.batch {
			ship()
		} else if timerC == nil {
			if timer == nil {
				timer = time.NewTimer(l.linger)
			} else {
				timer.Reset(l.linger)
			}
			timerC = timer.C
		}
	}
	for {
		select {
		case p := <-l.ingest:
			collect(p)
		case <-timerC:
			timerC = nil
			ship()
		case <-l.closeCh:
			// Close has waited out every in-flight Propose, so the buffer
			// holds everything that will ever arrive: drain it, ship the
			// final batch and stop.
			for {
				select {
				case p := <-l.ingest:
					collect(p)
					continue
				default:
				}
				break
			}
			ship()
			return
		}
	}
}

// onCommit resolves the committed instance's tickets and streams the
// commit through the configured Observer.
func (l *DecisionLog) onCommit(e pipeline.Entry) {
	l.resolveSeq(e.Seq, logEntry(e))
	if l.cfg.observer != nil {
		size := 0
		for _, p := range e.Payloads {
			size += len(p)
		}
		l.cfg.observer(Event{Type: EventCommit, Time: int(e.Seq), From: -1, To: -1, Kind: "commit", Size: size})
	}
}

// resolveSeq resolves the tickets registered for one committed seq,
// exactly once: whoever pulls them out of the map under the lock (the
// commit callback, or the batcher's post-registration re-check) owns
// their resolution.
func (l *DecisionLog) resolveSeq(seq uint64, entry LogEntry) {
	l.mu.Lock()
	tickets := l.tickets[seq]
	delete(l.tickets, seq)
	l.mu.Unlock()
	now := time.Now()
	for _, t := range tickets {
		t.entry = entry
		t.resolvedAt = now
		close(t.done)
	}
}

// failTickets resolves every unresolved ticket with err (nil: a clean
// close that still left tickets means their instances never committed).
func (l *DecisionLog) failTickets(err error) {
	if err == nil {
		err = fmt.Errorf("%w before the payload committed", ErrLogClosed)
	}
	l.mu.Lock()
	pending := l.tickets
	l.tickets = make(map[uint64][]*Ticket)
	l.mu.Unlock()
	for _, batch := range pending {
		for _, t := range batch {
			t.err = err
			close(t.done)
		}
	}
}

// Log-specific options.

// WithLogRuntime selects the decision log's transport (default
// RuntimeFabric).
func WithLogRuntime(r LogRuntime) Option {
	return optionFunc(func(c *Config) { c.logRuntime = r })
}

// WithLogDepth bounds concurrently open instances (default 1 — strictly
// sequential; raising it pipelines instances over the shared transport).
func WithLogDepth(d int) Option {
	return optionFunc(func(c *Config) { c.logDepth = d })
}

// WithLogBatch sets the ingest batch size: a pending batch ships as soon
// as it holds this many payloads (default 64).
func WithLogBatch(n int) Option {
	return optionFunc(func(c *Config) { c.logBatch = n })
}

// WithLogLinger bounds how long a non-empty, non-full batch waits for
// more payloads before shipping (default 2ms).
func WithLogLinger(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.logLinger = d })
}

// WithLogCommitFraction sets the fraction of correct nodes that must
// decide before an instance commits (default 1). Lowering it lets the log
// make progress when a lossy fault plan silences part of the population.
func WithLogCommitFraction(f float64) Option {
	return optionFunc(func(c *Config) { c.logCommitFrac = f })
}

// WithLogInstanceTimeout bounds how long the head instance may stay
// uncommitted before the log fails (default 30s).
func WithLogInstanceTimeout(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.logTimeout = d })
}

// WithLogStore makes the log durable: committed entries are persisted
// to a segmented write-ahead log under dir — before they are surfaced
// through WaitSeq or ticket resolution — and recovered on reopen
// (OpenLogAt). The empty string returns to in-memory operation.
func WithLogStore(dir string) Option {
	return optionFunc(func(c *Config) { c.storeDir = dir })
}

// WithLogStoreSync sets the store's group-commit window: an append is
// durable at the window's shared fsync instead of one fsync per append
// (default 0 — fsync every append). Larger windows trade commit latency
// for fsync amortization; crash durability of *surfaced* commits is
// unaffected, because commits surface only after their append returns.
func WithLogStoreSync(window time.Duration) Option {
	return optionFunc(func(c *Config) { c.storeSync = window })
}

// WithLogSnapshotEvery sets the store's compaction cadence: after this
// many appended records the committed prefix is rewritten as one
// snapshot and the WAL segments it covers are deleted (default 512;
// negative disables compaction).
func WithLogSnapshotEvery(n int) Option {
	return optionFunc(func(c *Config) { c.storeSnapEvery = n })
}

// WithCatchupPeer points a (re)starting durable log at a peer's TCP
// catch-up listener (DecisionLog.CatchupAddr): before the engine
// starts, the committed prefix missing past the recovered WAL frontier
// is fetched from the peer and persisted. Requires WithLogStore.
func WithCatchupPeer(addr string) Option {
	return optionFunc(func(c *Config) { c.catchupAddr = addr })
}

// WithCatchupFrom is the in-process form of WithCatchupPeer: the
// missing committed prefix is fetched from a peer DecisionLog in this
// process through its transport fabric's catch-up surface. Requires
// WithLogStore.
func WithCatchupFrom(peer *DecisionLog) Option {
	return optionFunc(func(c *Config) { c.catchupPeer = peer })
}

// OpenLogAt opens a durable decision log rooted at dir: OpenLog with
// WithLogStore(dir) applied last. On a fresh directory it starts empty;
// on an existing one it recovers the committed prefix (WAL replay,
// torn-tail truncation, optional catch-up) and resumes appending after
// it.
func OpenLogAt(ctx context.Context, dir string, cfg Config, opts ...Option) (*DecisionLog, error) {
	return OpenLog(ctx, cfg, append(append([]Option(nil), opts...), WithLogStore(dir))...)
}
