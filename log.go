package fastba

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/pipeline"
)

// The decision log: agreement as a service. RunAER decides one value; a
// DecisionLog runs an unbounded sequence of AER instances back-to-back
// over one long-lived transport, folding client proposals into per-
// instance batch values, pipelining up to Depth instances over
// instance-tagged envelopes, and committing instances strictly in
// sequence order. See DESIGN.md §7 for what the paper's single-shot
// guarantees do and do not promise across instances.

// LogRuntime selects the transport a DecisionLog runs on.
type LogRuntime int

// Decision-log runtimes.
const (
	// RuntimeFabric is the in-process loopback fabric: one goroutine per
	// node over batched mailboxes (the Goroutines model's substrate).
	RuntimeFabric LogRuntime = iota + 1
	// RuntimeTCP runs the same nodes over real loopback TCP sockets
	// (internal/netrun): one listener per node, lazily dialed mesh.
	RuntimeTCP
)

// String implements fmt.Stringer.
func (r LogRuntime) String() string {
	switch r {
	case RuntimeFabric:
		return "fabric"
	case RuntimeTCP:
		return "tcp"
	default:
		return fmt.Sprintf("LogRuntime(%d)", int(r))
	}
}

// ParseLogRuntime maps a runtime's String name back to its value.
func ParseLogRuntime(s string) (LogRuntime, error) {
	for _, r := range []LogRuntime{RuntimeFabric, RuntimeTCP} {
		if s == r.String() {
			return r, nil
		}
	}
	return 0, fmt.Errorf("fastba: unknown log runtime %q", s)
}

// LogEntry is one committed decision-log record.
type LogEntry struct {
	// Seq is the instance sequence number; a gap-free log commits
	// contiguous seqs from 0.
	Seq uint64 `json:"seq"`
	// Value is the hex encoding of the decided value — the digest of the
	// batch the instance agreed on.
	Value string `json:"value"`
	// Payloads are the client payloads folded into the instance.
	Payloads [][]byte `json:"-"`
	// PayloadCount is len(Payloads) (serialized in place of the payload
	// bytes).
	PayloadCount int `json:"payloads"`
	// Deciders of Correct correct nodes had decided when the instance
	// committed.
	Deciders int `json:"deciders"`
	Correct  int `json:"correct"`
	// DistinctValues counts distinct decided values among the deciders
	// (> 1 is a log-agreement violation); CertDeficits counts deciders
	// without a re-derivable quorum certificate (must stay 0);
	// MatchesProposal reports that the decided value is the proposed batch
	// digest (the validity probe).
	DistinctValues  int  `json:"distinctValues"`
	CertDeficits    int  `json:"certDeficits,omitempty"`
	MatchesProposal bool `json:"matchesProposal"`
	// Latency is the open-to-commit duration of the instance.
	Latency time.Duration `json:"latencyNs"`
}

// logEntry converts the engine's record to the public form.
func logEntry(e pipeline.Entry) LogEntry {
	return LogEntry{
		Seq:             e.Seq,
		Value:           hex.EncodeToString(e.Value.Bytes()),
		Payloads:        e.Payloads,
		PayloadCount:    len(e.Payloads),
		Deciders:        e.Deciders,
		Correct:         e.Correct,
		DistinctValues:  e.DistinctValues,
		CertDeficits:    e.CertDeficits,
		MatchesProposal: e.MatchesProposal,
		Latency:         e.Committed.Sub(e.Opened),
	}
}

// Ticket tracks one proposed payload through batching and commit.
type Ticket struct {
	submitted  time.Time
	resolvedAt time.Time
	done       chan struct{}
	entry      LogEntry
	err        error
}

// Wait blocks until the payload's instance commits (or the log fails) and
// returns the committed entry.
func (t *Ticket) Wait(ctx context.Context) (LogEntry, error) {
	select {
	case <-t.done:
		return t.entry, t.err
	case <-ctx.Done():
		return LogEntry{}, ctx.Err()
	}
}

// resolved reports the commit non-blockingly: the entry, the submit-to-
// commit latency, and whether the ticket resolved successfully.
func (t *Ticket) resolved() (LogEntry, time.Duration, bool) {
	select {
	case <-t.done:
	default:
		return LogEntry{}, 0, false
	}
	if t.err != nil {
		return LogEntry{}, 0, false
	}
	return t.entry, t.resolvedAt.Sub(t.submitted), true
}

// failed reports non-blockingly that the ticket resolved with an error.
func (t *Ticket) failed() bool {
	select {
	case <-t.done:
	default:
		return false
	}
	return t.err != nil
}

// proposal is one queued client payload.
type proposal struct {
	payload []byte
	ticket  *Ticket
}

// DecisionLog is a pipelined multi-instance decision log. Open one with
// OpenLog, feed it with Propose (batched client ingest) or Append
// (explicit deterministic batches), and Close it to flush and tear the
// transport down.
//
// Byzantine model: the log's corrupt nodes are fail-silent for its whole
// lifetime (the registry adversaries target single-shot runs); hostility
// beyond silence comes from the fault plan (WithFaults), which applies to
// every instance's traffic on the shared transport.
type DecisionLog struct {
	cfg     Config
	eng     *pipeline.Engine
	runtime LogRuntime
	batch   int
	linger  time.Duration

	ingest chan proposal
	// closeCh tells the batcher (and blocked Propose calls) that Close
	// started; the ingest channel itself is never closed, so a racing
	// Propose can never panic on a closed send.
	closeCh     chan struct{}
	batcherDone chan struct{}
	// shutdown releases the failure watcher once Close has resolved every
	// ticket itself.
	shutdown  chan struct{}
	stopWatch func() bool

	mu        sync.Mutex
	tickets   map[uint64][]*Ticket // per-seq tickets awaiting commit
	closed    bool
	proposers sync.WaitGroup // in-flight Propose calls (entered before closed flips)

	closeOnce sync.Once
	closeErr  error
}

// OpenLog builds and starts a decision log for the configuration: n,
// seed, corruption, knowledge fraction and fault plan come from the usual
// options; the log-specific knobs are WithLogRuntime, WithLogDepth,
// WithLogBatch, WithLogLinger, WithLogCommitFraction and
// WithLogInstanceTimeout. Cancelling ctx aborts the log promptly: open
// instances are abandoned and the transport (including a TCP cluster's
// goroutines) tears down without waiting for Close.
func OpenLog(ctx context.Context, cfg Config, opts ...Option) (*DecisionLog, error) {
	for _, o := range opts {
		o.apply(&cfg)
	}
	// Population and fault-plan validation happens once, in pipeline.New.
	runtime := cfg.logRuntime
	if runtime == 0 {
		runtime = RuntimeFabric
	}
	if runtime != RuntimeFabric && runtime != RuntimeTCP {
		return nil, fmt.Errorf("fastba: unknown log runtime %v", runtime)
	}
	batch := cfg.logBatch
	if batch <= 0 {
		batch = 64
	}
	linger := cfg.logLinger
	if linger <= 0 {
		linger = 2 * time.Millisecond
	}

	l := &DecisionLog{
		cfg:         cfg,
		runtime:     runtime,
		batch:       batch,
		linger:      linger,
		ingest:      make(chan proposal, 4*batch),
		closeCh:     make(chan struct{}),
		batcherDone: make(chan struct{}),
		shutdown:    make(chan struct{}),
		tickets:     make(map[uint64][]*Ticket),
	}
	eng, err := pipeline.New(pipeline.Config{
		N:               cfg.n,
		Params:          cfg.params,
		Seed:            cfg.seed,
		CorruptFrac:     cfg.corruptFrac,
		KnowFrac:        cfg.knowFrac,
		Depth:           cfg.logDepth,
		CommitFraction:  cfg.logCommitFrac,
		InstanceTimeout: cfg.logTimeout,
		Faults:          cfg.faults,
		DisablePool:     cfg.logNaive,
		OnCommit:        l.onCommit,
	})
	if err != nil {
		return nil, err
	}
	l.eng = eng
	switch runtime {
	case RuntimeFabric:
		eng.StartFabric()
	case RuntimeTCP:
		if err := eng.StartTCP(); err != nil {
			return nil, err
		}
	}
	// Propagate cancellation into transport teardown: a cancelled
	// long-lived run must not leave netrun accept/read goroutines behind.
	l.stopWatch = context.AfterFunc(ctx, eng.Abort)
	go l.batcher()
	// Resolve outstanding tickets promptly when the engine fails (an
	// instance timeout, a cancellation) instead of leaving Ticket.Wait
	// blocked until Close.
	go func() {
		select {
		case <-eng.Failed():
			l.failTickets(eng.Err())
		case <-l.shutdown:
		}
	}()
	return l, nil
}

// Runtime returns the transport the log runs on.
func (l *DecisionLog) Runtime() LogRuntime { return l.runtime }

// Correct returns the number of correct nodes in the log's population.
func (l *DecisionLog) Correct() int { return l.eng.Correct() }

// Propose submits one client payload: it joins the batcher's pending set
// and is folded into the next instance's value. Propose blocks for
// backpressure when the ingest buffer is full (the pipeline is at Depth
// and a full batch is already waiting). The returned Ticket resolves when
// the payload's instance commits, or with an error when the log fails or
// closes first.
func (l *DecisionLog) Propose(ctx context.Context, payload []byte) (*Ticket, error) {
	// Enter the proposer set under the lock: once Close flips the flag no
	// new proposer starts, and Close waits out everyone already inside —
	// so the batcher keeps consuming until every blocked send below has
	// finished, and the ingest channel never needs closing.
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, l.appendErr()
	}
	l.proposers.Add(1)
	l.mu.Unlock()
	defer l.proposers.Done()

	t := &Ticket{submitted: time.Now(), done: make(chan struct{})}
	select {
	case l.ingest <- proposal{payload: payload, ticket: t}:
		return t, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-l.closeCh:
		return nil, l.appendErr()
	case <-l.batcherDone:
		return nil, l.appendErr()
	}
}

// Append opens one instance with exactly the given batch, bypassing the
// batcher — the deterministic ingest path: with a fixed seed and fixed
// batches, the committed log is identical across runtimes (the
// conformance contract). It blocks while the pipeline is at Depth and
// returns the assigned sequence number.
func (l *DecisionLog) Append(ctx context.Context, payloads [][]byte) (uint64, error) {
	return l.eng.Append(ctx, payloads)
}

// WaitSeq blocks until instance seq commits and returns its entry.
func (l *DecisionLog) WaitSeq(ctx context.Context, seq uint64) (LogEntry, error) {
	e, err := l.eng.WaitSeq(ctx, seq)
	if err != nil {
		return LogEntry{}, err
	}
	return logEntry(e), nil
}

// Committed snapshots the committed log in sequence order.
func (l *DecisionLog) Committed() []LogEntry {
	raw := l.eng.Entries()
	out := make([]LogEntry, len(raw))
	for i, e := range raw {
		out[i] = logEntry(e)
	}
	return out
}

// Err returns the log's fatal error, if any.
func (l *DecisionLog) Err() error { return l.eng.Err() }

// Close flushes the batcher's pending payloads, waits for every open
// instance to commit (bounded by the instance timeout), tears the
// transport down and returns the log's fatal error, if any.
func (l *DecisionLog) Close() error {
	l.closeOnce.Do(func() {
		l.mu.Lock()
		l.closed = true
		l.mu.Unlock()
		// No new proposers can start; wait out the in-flight ones (the
		// batcher is still consuming, so blocked sends finish), then tell
		// the batcher to drain what reached the buffer and stop.
		l.proposers.Wait()
		close(l.closeCh)
		<-l.batcherDone
		l.closeErr = l.eng.Close()
		if l.stopWatch != nil {
			l.stopWatch()
		}
		l.failTickets(l.closeErr)
		close(l.shutdown)
	})
	return l.closeErr
}

// appendErr describes why ingestion stopped.
func (l *DecisionLog) appendErr() error {
	if err := l.eng.Err(); err != nil {
		return err
	}
	return fmt.Errorf("fastba: decision log closed")
}

// batcher folds queued proposals into instances: a batch opens when it
// reaches the batch size or when the linger timer expires with at least
// one payload pending. Slot backpressure happens inside Append.
func (l *DecisionLog) batcher() {
	defer close(l.batcherDone)
	var (
		payloads [][]byte
		tickets  []*Ticket
		timer    *time.Timer
		timerC   <-chan time.Time
	)
	ship := func() {
		if len(payloads) == 0 {
			return
		}
		batch, batchTickets := payloads, tickets
		payloads, tickets = nil, nil
		if timerC != nil {
			// The linger tick is unconsumed: if Stop loses the race with
			// the firing, drain the tick so the next Reset does not fire
			// instantly and cut a premature one-payload batch.
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timerC = nil
		}
		seq, err := l.eng.Append(context.Background(), batch)
		if err != nil {
			for _, t := range batchTickets {
				t.err = err
				close(t.done)
			}
			return
		}
		l.mu.Lock()
		l.tickets[seq] = batchTickets
		l.mu.Unlock()
		// The instance may have committed between Append returning and the
		// registration above, in which case onCommit found nothing to
		// resolve; re-check so the tickets never dangle. resolveSeq pulls
		// tickets out of the map under the lock, so the commit callback
		// and this re-check resolve each ticket exactly once.
		if e, ok := l.eng.CommittedSeq(seq); ok {
			l.resolveSeq(seq, logEntry(e))
		} else if err := l.eng.Err(); err != nil {
			// Same window on the failure side: the engine may have failed
			// between Append and registration, before the failure watcher
			// could see these tickets.
			l.failTickets(err)
		}
	}
	collect := func(p proposal) {
		payloads = append(payloads, p.payload)
		tickets = append(tickets, p.ticket)
		if len(payloads) >= l.batch {
			ship()
		} else if timerC == nil {
			if timer == nil {
				timer = time.NewTimer(l.linger)
			} else {
				timer.Reset(l.linger)
			}
			timerC = timer.C
		}
	}
	for {
		select {
		case p := <-l.ingest:
			collect(p)
		case <-timerC:
			timerC = nil
			ship()
		case <-l.closeCh:
			// Close has waited out every in-flight Propose, so the buffer
			// holds everything that will ever arrive: drain it, ship the
			// final batch and stop.
			for {
				select {
				case p := <-l.ingest:
					collect(p)
					continue
				default:
				}
				break
			}
			ship()
			return
		}
	}
}

// onCommit resolves the committed instance's tickets and streams the
// commit through the configured Observer.
func (l *DecisionLog) onCommit(e pipeline.Entry) {
	l.resolveSeq(e.Seq, logEntry(e))
	if l.cfg.observer != nil {
		size := 0
		for _, p := range e.Payloads {
			size += len(p)
		}
		l.cfg.observer(Event{Type: EventCommit, Time: int(e.Seq), From: -1, To: -1, Kind: "commit", Size: size})
	}
}

// resolveSeq resolves the tickets registered for one committed seq,
// exactly once: whoever pulls them out of the map under the lock (the
// commit callback, or the batcher's post-registration re-check) owns
// their resolution.
func (l *DecisionLog) resolveSeq(seq uint64, entry LogEntry) {
	l.mu.Lock()
	tickets := l.tickets[seq]
	delete(l.tickets, seq)
	l.mu.Unlock()
	now := time.Now()
	for _, t := range tickets {
		t.entry = entry
		t.resolvedAt = now
		close(t.done)
	}
}

// failTickets resolves every unresolved ticket with err (nil: a clean
// close that still left tickets means their instances never committed).
func (l *DecisionLog) failTickets(err error) {
	if err == nil {
		err = fmt.Errorf("fastba: decision log closed before the payload committed")
	}
	l.mu.Lock()
	pending := l.tickets
	l.tickets = make(map[uint64][]*Ticket)
	l.mu.Unlock()
	for _, batch := range pending {
		for _, t := range batch {
			t.err = err
			close(t.done)
		}
	}
}

// Log-specific options.

// WithLogRuntime selects the decision log's transport (default
// RuntimeFabric).
func WithLogRuntime(r LogRuntime) Option {
	return optionFunc(func(c *Config) { c.logRuntime = r })
}

// WithLogDepth bounds concurrently open instances (default 1 — strictly
// sequential; raising it pipelines instances over the shared transport).
func WithLogDepth(d int) Option {
	return optionFunc(func(c *Config) { c.logDepth = d })
}

// WithLogBatch sets the ingest batch size: a pending batch ships as soon
// as it holds this many payloads (default 64).
func WithLogBatch(n int) Option {
	return optionFunc(func(c *Config) { c.logBatch = n })
}

// WithLogLinger bounds how long a non-empty, non-full batch waits for
// more payloads before shipping (default 2ms).
func WithLogLinger(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.logLinger = d })
}

// WithLogCommitFraction sets the fraction of correct nodes that must
// decide before an instance commits (default 1). Lowering it lets the log
// make progress when a lossy fault plan silences part of the population.
func WithLogCommitFraction(f float64) Option {
	return optionFunc(func(c *Config) { c.logCommitFrac = f })
}

// WithLogInstanceTimeout bounds how long the head instance may stay
// uncommitted before the log fails (default 30s).
func WithLogInstanceTimeout(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.logTimeout = d })
}
