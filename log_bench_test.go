package fastba

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// benchLog runs one 100-instance decision log on the fabric runtime and
// returns the committed count. naive disables the per-instance node pool
// (every instance reallocates its core.Node state from scratch instead of
// rewinding pooled nodes with Node.Reset).
func benchLog(b *testing.B, entries, depth int, naive bool) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cfg := NewConfig(32,
		WithSeed(9),
		WithKnowFrac(1),
		WithCorruptFrac(0),
		WithLogDepth(depth),
	)
	cfg.logNaive = naive
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < entries; k++ {
		if _, err := log.Append(ctx, [][]byte{[]byte(fmt.Sprintf("bench-%d", k))}); err != nil {
			b.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		b.Fatal(err)
	}
	if got := len(log.Committed()); got != entries {
		b.Fatalf("committed %d of %d entries", got, entries)
	}
}

// BenchmarkLogInstanceReuse measures a 100-instance log (n=32, fabric
// runtime): the reset arm recycles per-instance protocol nodes through
// the MuxNode pool via core.Node.Reset; the naive arm rebuilds every node
// per instance. allocs/op is the stable metric on this hardware
// (BENCH_5.json).
func BenchmarkLogInstanceReuse(b *testing.B) {
	for _, arm := range []struct {
		name  string
		naive bool
	}{{"reset", false}, {"naive", true}} {
		b.Run(arm.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchLog(b, 100, 2, arm.naive)
			}
		})
	}
}

// BenchmarkLogPipelineDepth measures sustained closed-loop throughput of
// the load harness at pipelining depth 1 vs 4 (n=24, fabric runtime):
// committed entries per second is the headline metric (BENCH_5.json
// depth-scaling entry).
func BenchmarkLogPipelineDepth(b *testing.B) {
	for _, depth := range []int{1, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := NewConfig(24,
					WithSeed(11),
					WithKnowFrac(1),
					WithCorruptFrac(0.1),
					WithLogDepth(depth),
					WithLogBatch(16),
					WithWorkload(Workload{Clients: 32, PayloadBytes: 32, Duration: 3 * time.Second}),
				)
				res, err := RunLoad(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Err != "" || res.Committed == 0 || !res.Oracles.OK() {
					b.Fatalf("degenerate run: committed=%d err=%q oracles=%s", res.Committed, res.Err, res.Oracles)
				}
				b.ReportMetric(res.EntriesPerSec, "entries/s")
				b.ReportMetric(res.PayloadsPerSec, "payloads/s")
				b.ReportMetric(float64(res.CommitP50)/float64(time.Millisecond), "p50ms")
			}
		})
	}
}
