package fastba

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Durable decision-log tests: crash-restart recovery, catch-up state
// transfer, the close/abort sentinels and the durability oracle.

// durableConformanceConfig mirrors runConformanceLog's configuration with
// a store attached.
func durableConformanceConfig(runtime LogRuntime, dir string, opts ...Option) Config {
	return NewConfig(16,
		append([]Option{
			WithSeed(7),
			WithKnowFrac(1),
			WithCorruptFrac(0),
			WithLogRuntime(runtime),
			WithLogDepth(2),
			WithLogStore(dir),
		}, opts...)...)
}

// entriesIdentical requires two committed logs to match byte for byte:
// sequence numbers, decided values and payload bytes.
func entriesIdentical(t *testing.T, label string, a, b []LogEntry) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d entries", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Seq != y.Seq || x.Value != y.Value {
			t.Errorf("%s: entry %d diverges: (seq=%d value=%s) vs (seq=%d value=%s)",
				label, i, x.Seq, x.Value, y.Seq, y.Value)
		}
		if len(x.Payloads) != len(y.Payloads) {
			t.Errorf("%s: entry %d payload count diverges: %d vs %d", label, i, len(x.Payloads), len(y.Payloads))
			continue
		}
		for j := range x.Payloads {
			if string(x.Payloads[j]) != string(y.Payloads[j]) {
				t.Errorf("%s: entry %d payload %d diverges: %q vs %q", label, i, j, x.Payloads[j], y.Payloads[j])
			}
		}
	}
}

// runRestartConformance crashes a durable log mid-run, restarts it from
// its store directory, finishes the workload and returns the committed
// log. The crash frontier is pinned by WaitSeq so the scenario is
// deterministic.
func runRestartConformance(t *testing.T, runtime LogRuntime, entries, crashAfter int) []LogEntry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dir := t.TempDir()
	batches := conformancePayloads(7, entries)

	log, err := OpenLog(ctx, durableConformanceConfig(runtime, dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches[:crashAfter] {
		if _, err := log.Append(ctx, batch); err != nil {
			t.Fatalf("append on %v: %v", runtime, err)
		}
	}
	if _, err := log.WaitSeq(ctx, uint64(crashAfter-1)); err != nil {
		t.Fatalf("wait on %v: %v", runtime, err)
	}
	before := log.Committed()
	log.Crash()

	log, err = OpenLog(ctx, durableConformanceConfig(runtime, dir))
	if err != nil {
		t.Fatalf("reopen on %v: %v", runtime, err)
	}
	if got := log.Recovered(); got != crashAfter {
		t.Fatalf("recovered %d entries on %v, want %d", got, runtime, crashAfter)
	}
	if rep := CheckLogDurability(before, log.Committed()); !rep.OK() {
		t.Fatalf("durability violated across restart on %v: %s", runtime, rep)
	}
	for _, batch := range batches[crashAfter:] {
		if _, err := log.Append(ctx, batch); err != nil {
			t.Fatalf("post-restart append on %v: %v", runtime, err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatalf("close on %v: %v", runtime, err)
	}
	return log.Committed()
}

// TestDurableLogRestartByteIdentical: a log node killed mid-run (no
// final fsync) and restarted from its store directory converges to a
// committed log byte-identical to an uninterrupted in-memory run's — on
// the in-process fabric AND over real TCP sockets. Recovery must be
// invisible in committed state.
func TestDurableLogRestartByteIdentical(t *testing.T) {
	const entries, crashAfter = 6, 3
	reference := runConformanceLog(t, RuntimeFabric, entries)
	for _, runtime := range []LogRuntime{RuntimeFabric, RuntimeTCP} {
		restarted := runRestartConformance(t, runtime, entries, crashAfter)
		entriesIdentical(t, runtime.String()+" vs reference", restarted, reference)
		if rep := CheckLogInvariants(restarted, 1); !rep.OK() {
			t.Errorf("oracle violations on %v: %s", runtime, rep)
		}
	}
}

// TestDurableLogDoubleRestart: two crash/recover cycles compound — each
// restart extends the previous prefix and the final log is complete.
func TestDurableLogDoubleRestart(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	dir := t.TempDir()
	const entries = 6
	batches := conformancePayloads(7, entries)
	bounds := []int{2, 4, entries}
	from := 0
	var prev []LogEntry
	for _, until := range bounds {
		log, err := OpenLog(ctx, durableConformanceConfig(RuntimeFabric, dir))
		if err != nil {
			t.Fatal(err)
		}
		if got := log.Recovered(); got != from {
			t.Fatalf("recovered %d entries, want %d", got, from)
		}
		if rep := CheckLogDurability(prev, log.Committed()); !rep.OK() {
			t.Fatalf("durability violated: %s", rep)
		}
		for _, batch := range batches[from:until] {
			if _, err := log.Append(ctx, batch); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := log.WaitSeq(ctx, uint64(until-1)); err != nil {
			t.Fatal(err)
		}
		prev = log.Committed()
		from = until
		if until == entries {
			if err := log.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			log.Crash()
		}
	}
	entriesIdentical(t, "double restart vs reference", prev, runConformanceLog(t, RuntimeFabric, entries))
}

// TestDurableLogCatchupTCP: a restarted node whose WAL is behind fetches
// the missing committed prefix from a live peer over the peer's TCP
// catch-up listener.
func TestDurableLogCatchupTCP(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const entries = 4
	batches := conformancePayloads(7, entries)

	// Survivor: an in-memory TCP log that stays up, serving catch-up.
	survivor, err := OpenLog(ctx, NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0),
		WithLogRuntime(RuntimeTCP), WithLogDepth(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	for _, batch := range batches {
		if _, err := survivor.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := survivor.WaitSeq(ctx, entries-1); err != nil {
		t.Fatal(err)
	}
	addr := survivor.CatchupAddr()
	if addr == "" {
		t.Fatal("TCP log has no catch-up listener address")
	}

	// Restarter: an empty store directory — everything must come from the
	// peer before the engine starts.
	restarter, err := OpenLog(ctx, NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0),
		WithLogRuntime(RuntimeTCP), WithLogDepth(2),
		WithLogStore(t.TempDir()), WithCatchupPeer(addr)))
	if err != nil {
		t.Fatal(err)
	}
	if got := restarter.Recovered(); got != entries {
		t.Fatalf("recovered %d entries via TCP catch-up, want %d", got, entries)
	}
	caught := restarter.Committed()
	if err := restarter.Close(); err != nil {
		t.Fatal(err)
	}
	entriesIdentical(t, "tcp catch-up vs survivor", caught, survivor.Committed())
}

// TestDurableLogCatchupFabric: the in-process form — a durable log seeds
// its store from a running peer DecisionLog through the fabric's
// catch-up surface (WithCatchupFrom).
func TestDurableLogCatchupFabric(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const entries = 3
	batches := conformancePayloads(7, entries)

	survivor, err := OpenLog(ctx, NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0), WithLogDepth(2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches {
		if _, err := survivor.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := survivor.WaitSeq(ctx, entries-1); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	restarter, err := OpenLog(ctx, NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0), WithLogDepth(2),
		WithLogStore(dir), WithCatchupFrom(survivor)))
	if err != nil {
		t.Fatal(err)
	}
	if got := restarter.Recovered(); got != entries {
		t.Fatalf("recovered %d entries via fabric catch-up, want %d", got, entries)
	}
	caught := restarter.Committed()
	if err := restarter.Close(); err != nil {
		t.Fatal(err)
	}
	entriesIdentical(t, "fabric catch-up vs survivor", caught, survivor.Committed())
	if err := survivor.Close(); err != nil {
		t.Fatal(err)
	}

	// A closed peer no longer serves catch-up: opening against it must
	// fail loudly, not hang or silently start empty.
	if _, err := OpenLog(ctx, NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0), WithLogDepth(2),
		WithLogStore(t.TempDir()), WithCatchupFrom(survivor))); err == nil {
		t.Fatal("catch-up from a closed peer succeeded")
	}
}

// TestDurableLogCatchupUnderChurn: catch-up while the peer is still
// moving. A durable TCP log joins via WithCatchupPeer while the survivor
// is mid-workload (the transferred prefix is whatever had committed at
// that instant), crashes, and later reopens against the finished peer —
// composing WAL recovery with a second catch-up for the entries it
// missed. The final log must converge byte-identical to the survivor's.
func TestDurableLogCatchupUnderChurn(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	const entries, joinAfter = 8, 3
	batches := conformancePayloads(7, entries)

	survivor, err := OpenLog(ctx, NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0),
		WithLogRuntime(RuntimeTCP), WithLogDepth(2)))
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	for _, batch := range batches[:joinAfter] {
		if _, err := survivor.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := survivor.WaitSeq(ctx, joinAfter-1); err != nil {
		t.Fatal(err)
	}
	addr := survivor.CatchupAddr()

	// Churn: the survivor keeps committing while the joiner transfers.
	churnDone := make(chan error, 1)
	go func() {
		for _, batch := range batches[joinAfter:] {
			if _, err := survivor.Append(ctx, batch); err != nil {
				churnDone <- err
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		churnDone <- nil
	}()

	dir := t.TempDir()
	joinerCfg := NewConfig(16,
		WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0),
		WithLogRuntime(RuntimeTCP), WithLogDepth(2),
		WithLogStore(dir), WithCatchupPeer(addr))
	joiner, err := OpenLog(ctx, joinerCfg)
	if err != nil {
		t.Fatalf("catch-up against a moving peer: %v", err)
	}
	if got := joiner.Recovered(); got < joinAfter {
		t.Fatalf("mid-load catch-up recovered %d entries, want at least the %d pinned pre-join", got, joinAfter)
	}
	midPrefix := joiner.Committed()
	joiner.Crash() // kill -9 semantics: the WAL keeps only what was transferred

	if err := <-churnDone; err != nil {
		t.Fatalf("survivor append under churn: %v", err)
	}
	if _, err := survivor.WaitSeq(ctx, entries-1); err != nil {
		t.Fatal(err)
	}

	// Reopen from the same store: WAL recovery supplies the transferred
	// prefix, a fresh catch-up fetches everything committed since.
	joiner, err = OpenLog(ctx, joinerCfg)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	if got := joiner.Recovered(); got != entries {
		t.Fatalf("recovered %d entries after reopen, want %d", got, entries)
	}
	caught := joiner.Committed()
	if err := joiner.Close(); err != nil {
		t.Fatal(err)
	}
	final := survivor.Committed()
	if rep := CheckLogDurability(midPrefix, final); !rep.OK() {
		t.Fatalf("mid-load transfer is not a prefix of the survivor's log: %s", rep)
	}
	entriesIdentical(t, "churn catch-up vs survivor", caught, final)
	if rep := CheckLogInvariants(caught, 1); !rep.OK() {
		t.Errorf("oracle violations on the converged log: %s", rep)
	}
}

// TestLogClosedSentinel: a cleanly closed log reports ErrLogClosed on
// further appends — distinguishable from a context abort.
func TestLogClosedSentinel(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	log, err := OpenLog(ctx, NewConfig(16, WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(ctx, [][]byte{[]byte("one")}); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = log.Append(ctx, [][]byte{[]byte("late")})
	if !errors.Is(err, ErrLogClosed) {
		t.Fatalf("append after clean close: %v, want ErrLogClosed", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("clean close misreported as a context abort: %v", err)
	}
	if _, err := log.Propose(ctx, []byte("late")); !errors.Is(err, ErrLogClosed) {
		t.Fatalf("propose after clean close: %v, want ErrLogClosed", err)
	}
}

// TestLogCanceledSentinel: cancelling the log's context surfaces
// context.Canceled — NOT ErrLogClosed — on further appends.
func TestLogCanceledSentinel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	log, err := OpenLog(ctx, NewConfig(16, WithSeed(7), WithKnowFrac(1), WithCorruptFrac(0)))
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	cancel()
	deadline := time.Now().Add(30 * time.Second)
	for log.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("cancellation never reached the log")
		}
		time.Sleep(time.Millisecond)
	}
	// A fresh context isolates the append from the cancelled one: the
	// error below is the log's own verdict, not the caller's ctx.
	_, err = log.Append(context.Background(), [][]byte{[]byte("late")})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("append after abort: %v, want context.Canceled", err)
	}
	if errors.Is(err, ErrLogClosed) {
		t.Fatalf("context abort misreported as a clean close: %v", err)
	}
}

// TestCheckLogDurability: unit coverage of the durability oracle's
// prefix-extension rule.
func TestCheckLogDurability(t *testing.T) {
	mk := func(n int) []LogEntry {
		out := make([]LogEntry, n)
		for i := range out {
			out[i] = LogEntry{Seq: uint64(i), Value: "abcd", PayloadCount: 2}
		}
		return out
	}

	if rep := CheckLogDurability(mk(3), mk(5)); !rep.OK() {
		t.Fatalf("extension flagged: %s", rep)
	}
	if rep := CheckLogDurability(mk(3), mk(3)); !rep.OK() {
		t.Fatalf("identity flagged: %s", rep)
	}
	if rep := CheckLogDurability(nil, mk(2)); !rep.OK() {
		t.Fatalf("growth from empty flagged: %s", rep)
	}

	if rep := CheckLogDurability(mk(5), mk(3)); rep.OK() {
		t.Fatal("regression not flagged")
	}
	changed := mk(4)
	changed[2].Value = "eeee"
	if rep := CheckLogDurability(mk(4), changed); rep.OK() {
		t.Fatal("changed value not flagged")
	}
	fewer := mk(4)
	fewer[1].PayloadCount = 1
	if rep := CheckLogDurability(mk(4), fewer); rep.OK() {
		t.Fatal("changed payload count not flagged")
	}
	for _, rep := range []OracleReport{CheckLogDurability(mk(1), mk(1))} {
		if len(rep.Checked) != 1 || rep.Checked[0] != OracleLogDurability {
			t.Fatalf("unexpected checked set: %v", rep.Checked)
		}
	}
}

// TestRunLoadRestarts: the load harness's restart legs crash and recover
// a durable log under sustained client load, and the durability oracle
// joins the run's verdict.
func TestRunLoadRestarts(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunLoad(ctx, NewConfig(16,
		WithSeed(3),
		WithKnowFrac(1),
		WithCorruptFrac(0),
		WithLogDepth(2),
		WithLogBatch(8),
		WithLogStore(t.TempDir()),
		WithWorkload(Workload{Clients: 4, PayloadBytes: 16, Duration: 1200 * time.Millisecond, Restarts: 2}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Fatalf("performed %d restarts, want 2", res.Restarts)
	}
	if !res.Oracles.OK() {
		t.Fatalf("oracle violations under restarts: %s", res.Oracles)
	}
	found := false
	for _, name := range res.Oracles.Checked {
		if name == OracleLogDurability {
			found = true
		}
	}
	if !found {
		t.Fatalf("durability oracle not in the checked set: %v", res.Oracles.Checked)
	}
	if res.Err != "" {
		t.Fatalf("load run failed: %s", res.Err)
	}

	// Restarts without a store are rejected up front.
	if _, err := RunLoad(ctx, NewConfig(16,
		WithWorkload(Workload{Restarts: 1, Duration: 100 * time.Millisecond}))); err == nil {
		t.Fatal("RunLoad accepted restarts without a store")
	}
}

// TestFuzzLogRestartCase: the fuzzer's restart family replays
// deterministically and its digest matches the restart-free twin's
// committed sequence basis (same entries, same values).
func TestFuzzLogRestartCase(t *testing.T) {
	c := FuzzCase{
		N: 16, Seed: 11, CorruptFrac: 0, KnowFrac: 1,
		Plan: FaultPlan{Seed: 31, DupProb: 0.2},
		Log:  &LogFuzz{Entries: 4, Depth: 2, Batch: 2, PayloadBytes: 16, RestartAfter: 2},
	}
	a, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Report.OK() {
		t.Fatalf("restart case violates: %s", a.Report)
	}
	found := false
	for _, name := range a.Report.Checked {
		if name == OracleLogDurability {
			found = true
		}
	}
	if !found {
		t.Fatalf("restart case skipped the durability oracle: %v", a.Report.Checked)
	}
	b, err := ReplayCase(c)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Fatalf("restart case replays unstably: %s vs %s", a.Digest, b.Digest)
	}
}

// TestFuzzRestartCampaign: a campaign with the restart family enabled
// samples, executes and passes restart cases.
func TestFuzzRestartCampaign(t *testing.T) {
	restartCases := 0
	res, err := SimFuzz(context.Background(), FuzzConfig{
		Seed:        13,
		Runs:        4,
		Ns:          []int{16},
		LogFrac:     1,
		RestartFrac: 1,
		OnRun: func(r FuzzRun) {
			if r.Case.Log != nil && r.Case.Log.RestartAfter > 0 {
				restartCases++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 4 || restartCases != 4 {
		t.Fatalf("executed %d cases, %d restart cases; want 4/4", res.Executed, restartCases)
	}
	for _, f := range res.Failures {
		t.Errorf("restart campaign failure: %s: %v", f.Case, f.Violations)
	}
}
