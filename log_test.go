package fastba

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// conformancePayloads derives a deterministic workload: entry k is a
// batch of k%3+1 payloads whose bytes are pure functions of (seed, k, i).
func conformancePayloads(seed uint64, entries int) [][][]byte {
	batches := make([][][]byte, entries)
	for k := range batches {
		batch := make([][]byte, k%3+1)
		for i := range batch {
			batch[i] = []byte(fmt.Sprintf("seed=%d/entry=%d/payload=%d", seed, k, i))
		}
		batches[k] = batch
	}
	return batches
}

// runConformanceLog appends the deterministic workload on the given
// runtime and returns the committed log.
func runConformanceLog(t *testing.T, runtime LogRuntime, entries int, opts ...Option) []LogEntry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := NewConfig(16,
		append([]Option{
			WithSeed(7),
			WithKnowFrac(1),
			WithCorruptFrac(0),
			WithLogRuntime(runtime),
			WithLogDepth(2),
		}, opts...)...)
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range conformancePayloads(7, entries) {
		if _, err := log.Append(ctx, batch); err != nil {
			t.Fatalf("append on %v: %v", runtime, err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatalf("close on %v: %v", runtime, err)
	}
	return log.Committed()
}

// TestDecisionLogConformance: the same seed and workload yield
// byte-identical committed logs on the in-process fabric and over real
// TCP sockets — sequence numbers, decided values and payload bytes all
// equal. This is the determinism contract of the decision log: committed
// state is a function of (seed, batches), not of transport scheduling.
func TestDecisionLogConformance(t *testing.T) {
	const entries = 6
	fabric := runConformanceLog(t, RuntimeFabric, entries)
	tcp := runConformanceLog(t, RuntimeTCP, entries)
	if len(fabric) != entries || len(tcp) != entries {
		t.Fatalf("committed %d (fabric) and %d (tcp) entries, want %d", len(fabric), len(tcp), entries)
	}
	for i := range fabric {
		f, c := fabric[i], tcp[i]
		if f.Seq != c.Seq || f.Value != c.Value {
			t.Errorf("entry %d diverges: fabric (seq=%d value=%s) vs tcp (seq=%d value=%s)",
				i, f.Seq, f.Value, c.Seq, c.Value)
		}
		if len(f.Payloads) != len(c.Payloads) {
			t.Errorf("entry %d payload count diverges: %d vs %d", i, len(f.Payloads), len(c.Payloads))
			continue
		}
		for j := range f.Payloads {
			if string(f.Payloads[j]) != string(c.Payloads[j]) {
				t.Errorf("entry %d payload %d diverges: %q vs %q", i, j, f.Payloads[j], c.Payloads[j])
			}
		}
	}
	for _, entries := range [][]LogEntry{fabric, tcp} {
		if rep := CheckLogInvariants(entries, 1); !rep.OK() {
			t.Errorf("oracle violations: %s", rep)
		}
	}
}

// TestDecisionLogLosslessFaultsUnderLoad: a lossless fault plan
// (duplication, delay, reordering) on the shared transport must leave
// every safety oracle clean while the pipeline runs at depth with
// Byzantine nodes present.
func TestDecisionLogLosslessFaultsUnderLoad(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cfg := NewConfig(16,
		WithSeed(5),
		WithKnowFrac(1),
		WithCorruptFrac(0.1),
		WithLogDepth(4),
		WithFaults(FaultPlan{Seed: 21, DupProb: 0.25, DelayProb: 0.4, MaxDelay: 4}),
	)
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const entries = 8
	for _, batch := range conformancePayloads(5, entries) {
		if _, err := log.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	committed := log.Committed()
	if len(committed) != entries {
		t.Fatalf("committed %d entries, want %d", len(committed), entries)
	}
	if rep := CheckLogInvariants(committed, 1); !rep.OK() {
		t.Errorf("oracle violations under lossless faults: %s", rep)
	}
}

// TestDecisionLogProposeBatching: client proposals batch into instances
// and every ticket resolves with its entry.
func TestDecisionLogProposeBatching(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cfg := NewConfig(16,
		WithSeed(2), WithKnowFrac(1), WithCorruptFrac(0),
		WithLogDepth(2), WithLogBatch(4), WithLogLinger(time.Millisecond))
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 10; i++ {
		tk, err := log.Propose(ctx, []byte(fmt.Sprintf("p%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		entry, err := tk.Wait(ctx)
		if err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if entry.PayloadCount == 0 {
			t.Fatalf("ticket %d resolved against an empty entry", i)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	committed := log.Committed()
	total := 0
	for _, e := range committed {
		total += e.PayloadCount
	}
	if total != 10 {
		t.Fatalf("%d payloads across %d entries, want 10", total, len(committed))
	}
	if rep := CheckLogInvariants(committed, 1); !rep.OK() {
		t.Errorf("oracle violations: %s", rep)
	}
}

// TestDecisionLogObserverCommits: EventCommit streams one event per
// committed entry, in sequence order.
func TestDecisionLogObserverCommits(t *testing.T) {
	ctx := context.Background()
	var seqs []int
	cfg := NewConfig(16,
		WithSeed(3), WithKnowFrac(1), WithCorruptFrac(0), WithLogDepth(1),
		WithObserver(func(ev Event) {
			if ev.Type == EventCommit {
				seqs = append(seqs, ev.Time)
			}
		}))
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := log.Append(ctx, [][]byte{[]byte(fmt.Sprintf("v%d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 3 {
		t.Fatalf("observed %d commit events, want 3", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("commit events out of order: %v", seqs)
		}
	}
}

// TestLogOracleCatchesGap: a fabricated hole in the committed sequence is
// a log-gap-free violation (the oracle is not a tautology of the commit
// rule — it cross-checks it).
func TestLogOracleCatchesGap(t *testing.T) {
	entries := []LogEntry{
		{Seq: 0, DistinctValues: 1, MatchesProposal: true},
		{Seq: 2, DistinctValues: 1, MatchesProposal: true},
	}
	rep := CheckLogInvariants(entries, 1)
	found := false
	for _, v := range rep.Violations {
		if v.Oracle == OracleLogGapFree {
			found = true
		}
	}
	if !found {
		t.Fatalf("gap not caught: %s", rep)
	}
	// Divergence and cert deficits are caught too.
	bad := []LogEntry{{Seq: 0, DistinctValues: 2, CertDeficits: 1, MatchesProposal: false}}
	rep = CheckLogInvariants(bad, 1)
	caught := map[string]bool{}
	for _, v := range rep.Violations {
		caught[v.Oracle] = true
	}
	for _, want := range []string{OracleLogAgreement, OracleLogCertificates, OracleLogValidity} {
		if !caught[want] {
			t.Errorf("%s not caught: %s", want, rep)
		}
	}
	// Below the a.e. precondition, validity is skipped, not violated.
	rep = CheckLogInvariants(bad, 0.5)
	if _, skipped := rep.Skipped[OracleLogValidity]; !skipped {
		t.Errorf("validity not skipped below the precondition: %s", rep)
	}
}

// TestRunLoadSuiteWorkloadAxis: workloads are a first-class sweep
// dimension — KindLog cells are labeled per workload and carry
// throughput/latency statistics and oracle verdicts.
func TestRunLoadSuiteWorkloadAxis(t *testing.T) {
	rep, err := RunSuite(context.Background(), Suite{
		Name: "load",
		Kind: KindLog,
		Sweep: Sweep{
			Ns: []int{16},
			Workloads: []Workload{
				{Clients: 4, PayloadBytes: 16, Duration: 500 * time.Millisecond},
				{Clients: 8, Rate: 50, PayloadBytes: 16, Duration: 500 * time.Millisecond},
			},
			Options: []Option{WithKnowFrac(1), WithCorruptFrac(0), WithLogDepth(2)},
		},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("want 2 workload cells, got %d", len(rep.Cells))
	}
	for _, cr := range rep.Cells {
		if cr.Cell.Workload == "" {
			t.Errorf("cell %v missing workload label", cr.Cell)
		}
		if cr.OracleViolations != 0 {
			t.Errorf("cell %q has oracle violations: %+v", cr.Cell.Workload, cr.Records)
		}
		if cr.Load == nil {
			t.Fatalf("cell %q missing load stats", cr.Cell.Workload)
		}
		if cr.Load.Committed.Mean <= 0 {
			t.Errorf("cell %q committed nothing", cr.Cell.Workload)
		}
		for _, rec := range cr.Records {
			if rec.Committed > 0 && rec.CommitP99Ms < rec.CommitP50Ms {
				t.Errorf("cell %q: p99 %.2fms below p50 %.2fms", cr.Cell.Workload, rec.CommitP99Ms, rec.CommitP50Ms)
			}
		}
	}
}

// countGoroutines samples the goroutine count after a settling pause.
func countGoroutines() int {
	time.Sleep(150 * time.Millisecond)
	return runtime.NumGoroutine()
}

// TestRunTCPCancelNoLeak: a cancelled RunTCP tears the netrun cluster
// down promptly — no accept loops, read loops or delivery goroutines
// survive the return.
func TestRunTCPCancelNoLeak(t *testing.T) {
	before := countGoroutines()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the run starts: the run must still clean up
	if _, err := RunTCP(ctx, NewConfig(16, WithSeed(1)), 30*time.Second); err == nil {
		t.Fatal("cancelled RunTCP returned no error")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := RunTCP(ctx2, NewConfig(24, WithSeed(2)), 30*time.Second); err == nil {
		// A fast run may legitimately beat the 50ms deadline; accept both.
		t.Log("tcp run finished before the cancellation deadline")
	}
	after := countGoroutines()
	if after > before+3 {
		t.Fatalf("goroutines grew from %d to %d after cancelled TCP runs", before, after)
	}
}

// TestDecisionLogCancelNoLeak: cancelling a log's context aborts open
// instances and tears the TCP transport down without Close.
func TestDecisionLogCancelNoLeak(t *testing.T) {
	before := countGoroutines()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := NewConfig(16, WithSeed(4), WithKnowFrac(1), WithCorruptFrac(0),
		WithLogRuntime(RuntimeTCP), WithLogDepth(2))
	log, err := OpenLog(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := log.Append(ctx, [][]byte{[]byte("x")}); err != nil {
		t.Fatal(err)
	}
	ticket, err := log.Propose(ctx, []byte("pending"))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	// Tickets must resolve on engine failure without waiting for Close
	// (the Ticket.Wait contract).
	waitCtx, waitCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer waitCancel()
	if _, err := ticket.Wait(waitCtx); err == nil || waitCtx.Err() != nil {
		t.Fatalf("ticket did not resolve with an error after cancellation: %v / %v", err, waitCtx.Err())
	}
	// After cancellation the engine is aborted; Close only cleans up the
	// batcher and must not hang.
	done := make(chan struct{})
	go func() { log.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung after context cancellation")
	}
	after := countGoroutines()
	if after > before+3 {
		t.Fatalf("goroutines grew from %d to %d after cancelled log", before, after)
	}
}
