package fastba

import (
	"github.com/fastba/fastba/internal/metrics"
)

// MetricsRegistry is the live counter surface shared by every runtime: an
// in-process Prometheus-style registry (counters, gauges, histograms) with
// a text exposition via WritePrometheus. The balogd daemon serves one on
// /metrics; the load harness exports its commit-latency histogram and the
// transport's supervision counters through one when WithMetrics is set —
// one bookkeeping path whether the log runs in-process or as a daemon
// cluster.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// WithMetrics exports run-time counters through reg: RunLoad (and
// RunDaemonLoad) register their commit-latency histogram, throughput
// counters and fastba_net_* transport supervision counters there, using
// the same metric names and bucket edges the balogd daemon serves on
// /metrics, so in-process and daemon runs report through directly
// comparable series.
func WithMetrics(reg *MetricsRegistry) Option {
	return optionFunc(func(c *Config) { c.metricsReg = reg })
}

// exportLoadMetrics publishes a finished load run through the registry:
// the commit-latency histogram (seconds, shared edges), throughput
// counters and the accumulated transport counters. Labels carry the
// runtime so fabric and TCP runs stay separate series.
func exportLoadMetrics(reg *MetricsRegistry, res *LoadResult, latenciesMs []float64) {
	if reg == nil {
		return
	}
	label := []string{"runtime", res.Runtime}
	h := reg.Histogram("fastba_commit_latency_seconds", "Client-observed commit latency.", metrics.LatencyBucketsSeconds(), label...)
	for _, ms := range latenciesMs {
		h.Observe(ms / 1e3)
	}
	reg.Counter("fastba_load_proposed_total", "Payloads accepted from load clients.", label...).Add(int64(res.Proposed))
	reg.Counter("fastba_load_committed_payloads_total", "Payloads that reached a committed entry.", label...).Add(int64(res.CommittedPayloads))
	reg.Counter("fastba_load_committed_entries_total", "Entries committed during load runs.", label...).Add(int64(res.Committed))
	reg.Counter("fastba_load_restarts_total", "Crash/recover cycles performed under load.", label...).Add(int64(res.Restarts))
	net := res.Net
	metrics.RegisterNetStats(reg, func() NetStats { return net }, label...)
}
