package fastba

import (
	"time"

	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/simnet"
)

// Transport supervision for the TCP runtime (RunTCP and RuntimeTCP
// decision logs). Every directed connection gets a supervisor: a bounded
// send queue drained by a dedicated writer, jittered exponential-backoff
// redial when the socket breaks, write deadlines on every frame, and a
// heartbeat failure detector whose suspect/alive transitions surface as
// observer events (EventPeerSuspect/EventPeerAlive) and NetStats
// counters. A peer that stays unreachable past the redial budget degrades
// to dropped frames — never to stalled senders — so a run keeps
// committing while ≤f peers are dark, and a healed peer re-syncs through
// the catch-up path (WithCatchupPeer). See DESIGN.md §9 for the full
// failure model.

// ReconnectPolicy is the jittered-exponential-backoff redial schedule of
// a connection supervisor (base/cap/max-attempts; see the field docs).
type ReconnectPolicy = netrun.ReconnectPolicy

// HeartbeatPolicy is the TCP failure detector: ping frames on idle links,
// suspect on an unanswered ping or stalled write, alive again on the next
// pong or successful redial.
type HeartbeatPolicy = netrun.HeartbeatPolicy

// NetStats aggregates a TCP run's connection-supervision counters:
// dial/redial churn, failure-detector transitions, shed frames, chaos
// strikes. Surfaced by TCPResult.Net, LoadResult.Net, DecisionLog.NetStats
// and Cluster metrics.
type NetStats = simnet.NetStats

// ChaosPlan is a seeded schedule of live-socket strikes — close,
// half-close, blackhole-by-pausing-reads — applied to a TCP run's real
// connections mid-run. The strike sequence is deterministic per seed
// (ChaosSchedule); wall-clock placement follows the run. Attach one with
// WithChaos.
type ChaosPlan = netrun.ChaosPlan

// ChaosKind enumerates the strike kinds of a ChaosPlan.
type ChaosKind = netrun.ChaosKind

// Chaos strike kinds.
const (
	// ChaosClose closes both endpoints of a connection outright.
	ChaosClose = netrun.ChaosClose
	// ChaosHalfClose shuts the dialer's read side: data still flows, but
	// heartbeat answers die, forcing the failure detector to act.
	ChaosHalfClose = netrun.ChaosHalfClose
	// ChaosBlackhole pauses the accepting side's reads, backing frames up
	// into kernel buffers until the window expires or the detector fires.
	ChaosBlackhole = netrun.ChaosBlackhole
)

// ChaosStrike is one scheduled strike on a directed link.
type ChaosStrike = netrun.ChaosStrike

// ChaosSchedule returns a plan's deterministic strike sequence for an
// n-node cluster — a pure function of (plan seed, n), the artifact the
// fuzzer's chaos digests and the seeded replay tests lock in.
func ChaosSchedule(p ChaosPlan, n int) []ChaosStrike {
	return netrun.ChaosSchedule(p, n)
}

// ParseChaosKind parses a chaos kind name: close, halfclose, blackhole.
func ParseChaosKind(s string) (ChaosKind, error) {
	return netrun.ParseChaosKind(s)
}

// WithDialTimeout bounds every TCP connect attempt — mesh links and
// catch-up fetches (default 2s).
func WithDialTimeout(d time.Duration) Option {
	return optionFunc(func(c *Config) { c.net.DialTimeout = d })
}

// WithReconnect sets the redial policy for broken TCP connections
// (default: base 25ms, cap 1s, 8 attempts before the link goes down).
func WithReconnect(p ReconnectPolicy) Option {
	return optionFunc(func(c *Config) { c.net.Reconnect = p })
}

// WithHeartbeat tunes the TCP failure detector (default: ping every
// 500ms, suspect after 2s; Disable turns it off).
func WithHeartbeat(p HeartbeatPolicy) Option {
	return optionFunc(func(c *Config) { c.net.Heartbeat = p })
}

// WithSendQueue bounds each directed connection's send queue to frames
// entries (default 1024) and selects the overload policy: shedOldest true
// drops the oldest queued frame when full (counted in NetStats.Shed),
// false blocks the sender until the writer drains.
func WithSendQueue(frames int, shedOldest bool) Option {
	return optionFunc(func(c *Config) {
		c.net.QueueLen = frames
		c.net.ShedOldest = shedOldest
	})
}

// WithChaos installs a live-socket chaos plan on the TCP runtime. It
// applies to RunTCP and to RuntimeTCP decision logs (OpenLog rejects it
// on the fabric runtime); safety oracles must hold under any plan, while
// termination accounting treats chaos runs as lossy — frames buffered in
// a severed socket die with it.
func WithChaos(p ChaosPlan) Option {
	return optionFunc(func(c *Config) { c.net.Chaos = p })
}
