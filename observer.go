package fastba

import (
	"io"
	"sync"

	"github.com/fastba/fastba/internal/trace"
)

// EventType classifies streaming execution events.
type EventType int

// Event types.
const (
	// EventDeliver fires for every delivered message.
	EventDeliver EventType = iota + 1
	// EventRound fires when execution time advances: the start of a new
	// synchronous round or the first delivery at a new causal depth.
	EventRound
	// EventDecision fires when a correct node decides (AER runs; the To
	// field names the decider).
	EventDecision
	// EventCommit fires when a decision log commits an entry: Time is the
	// entry's sequence number, Size the total payload bytes folded into
	// it. Full entries are available through DecisionLog.Committed.
	EventCommit
	// EventPeerSuspect fires when the TCP failure detector suspects the
	// link From → To (heartbeat unanswered or write stalled), or escalates
	// it to down after the redial budget runs out (Kind distinguishes:
	// "suspect" vs "down"). TCP runs only; streamed live, not buffered.
	EventPeerSuspect
	// EventPeerAlive fires when a suspected or down link From → To is
	// confirmed alive again (a pong arrived, or a redial succeeded).
	EventPeerAlive
	// EventReconnect fires when a broken link From → To is re-established
	// by the supervisor's backoff redial.
	EventReconnect
)

// String implements fmt.Stringer.
func (t EventType) String() string {
	switch t {
	case EventDeliver:
		return "deliver"
	case EventRound:
		return "round"
	case EventDecision:
		return "decision"
	case EventCommit:
		return "commit"
	case EventPeerSuspect:
		return "peer-suspect"
	case EventPeerAlive:
		return "peer-alive"
	case EventReconnect:
		return "reconnect"
	default:
		return "event"
	}
}

// Event is one streaming observation from a running execution.
type Event struct {
	Type EventType
	// Time is the synchronous round or asynchronous causal depth (0 for
	// TCP runs, which have no logical clock).
	Time int
	// From and To address the delivery; for EventDecision, To is the
	// deciding node and From is -1.
	From, To NodeID
	// Kind is the message kind of a delivery ("push", "poll", ...).
	Kind string
	// Size is the delivered payload's wire size in bytes.
	Size int
}

// Observer receives execution events, in delivery order. Runners invoke it
// synchronously from the delivery path (concurrent runtimes serialize the
// calls), so implementations must be fast and must not call back into the
// run. Register one per run with WithObserver.
type Observer func(Event)

// Trace aggregates delivery events into the package's debugging views: a
// per-time message-kind timeline (the temporal version of the paper's
// Figure 2) and a most-loaded-nodes sketch for spotting hot spots under
// the cornering attack. It is safe for use with every runtime, including
// Goroutines and TCP runs.
type Trace struct {
	mu sync.Mutex
	tr *trace.Trace
}

// NewTrace returns a Trace for n nodes. Attach it to a run with
// WithObserver(t.Observer()) and render after the run returns.
func NewTrace(n int) *Trace {
	return &Trace{tr: trace.New(n)}
}

// Observer returns the hook to pass to WithObserver.
func (t *Trace) Observer() Observer {
	return func(ev Event) {
		if ev.Type != EventDeliver {
			return
		}
		t.mu.Lock()
		t.tr.Record(ev.Time, ev.Kind, ev.To)
		t.mu.Unlock()
	}
}

// Timeline renders deliveries per time step and kind, one line per step.
func (t *Trace) Timeline(w io.Writer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tr.Timeline(w)
}

// Hotspots renders the most-loaded nodes by deliveries received, up to
// limit entries.
func (t *Trace) Hotspots(w io.Writer, limit int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tr.Hotspots(w, limit)
}

// MaxTime returns the largest delivery time observed.
func (t *Trace) MaxTime() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tr.MaxTime()
}

// TotalDeliveries returns the number of observed deliveries.
func (t *Trace) TotalDeliveries() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tr.TotalDeliveries()
}
