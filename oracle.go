package fastba

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Protocol-invariant oracles. Each oracle states one guarantee the paper
// proves about AER and checks it on a finished run; together they separate
// "the network was hostile" from "the protocol is broken". Safety oracles
// (agreement, validity, certificates, single-decision) are checked under
// EVERY fault plan — no schedule of drops, duplicates, delays, partitions
// or crashes excuses a safety violation, because a correct node only
// decides on a strict answer majority of its authoritative poll list
// (Algorithm 1) and faults can only remove or repeat messages, never forge
// them. The termination oracle is different: it restates Lemmas 9/10,
// which assume reliable channels, so it applies only to lossless plans
// (delay, duplication and reordering — no drops, partitions or crashes).
const (
	// OracleAgreement: no two correct nodes decide different values
	// (Lemma 7 / the Agreement property of §2.1).
	OracleAgreement = "agreement"
	// OracleValidity: a correct node only ever decides gstring. Sound
	// when the almost-everywhere precondition holds (≥ 3/4 of correct
	// nodes start knowing gstring, §3.1); skipped below it, where a junk
	// majority is legitimately possible.
	OracleValidity = "validity"
	// OracleCertificates: every decision is backed by a re-derived quorum
	// certificate — a strict majority of the decider's authoritative poll
	// list J(x, r) recorded as answerers (Node.DecisionCert re-validates
	// membership against the shared sampler, independently of the
	// delivery-path checks).
	OracleCertificates = "certificates"
	// OracleSingleDecision: the decision-event stream is consistent with
	// the end state — at most one decision event per node (decisions are
	// irrevocable), never more event-emitting nodes than final deciders,
	// and, once any decision is streamed, no decider missing from the
	// stream. Needs the Oracles' Observer attached; simulation runtimes
	// only (TCP runs stream deliveries but no decision events).
	OracleSingleDecision = "single-decision"
	// OracleTermination: every correct node decides. Applies only to
	// lossless fault plans; under lossy plans it is reported as skipped.
	// (No separate round-bound check: the synchronous runner caps
	// execution at MaxRounds by construction, so full decision within the
	// run is the bound.)
	OracleTermination = "termination"

	// Cross-instance decision-log oracles (CheckLogInvariants). Like the
	// single-shot safety oracles they hold under EVERY fault plan: faults
	// can stall instances or silence nodes, but a committed entry must
	// still be gap-free in sequence, agreed by its deciders, and backed by
	// re-derivable certificates.

	// OracleLogGapFree: committed sequence numbers are contiguous from 0 —
	// the in-order commit rule admits no holes.
	OracleLogGapFree = "log-gap-free"
	// OracleLogAgreement: within every committed instance, all correct
	// deciders decided the same value (the per-instance agreement
	// guarantee, lifted to the log).
	OracleLogAgreement = "log-agreement"
	// OracleLogCertificates: every decider of every committed instance
	// holds a re-derived strict poll-list majority certificate.
	OracleLogCertificates = "log-certificates"
	// OracleLogValidity: every committed value is the proposed batch
	// digest. Sound under the a.e. precondition (knowFrac ≥ 3/4);
	// skipped below it.
	OracleLogValidity = "log-validity"
	// OracleLogDurability: across a crash and restart, no committed entry
	// may regress — the post-restart log must extend the pre-crash
	// committed prefix, entry for entry (CheckLogDurability). This is the
	// store's contract: an entry surfaces only after it is persisted, so a
	// restart recovers at least everything any client observed.
	OracleLogDurability = "log-durability"
)

// Violation is one oracle finding on one run.
type Violation struct {
	// Oracle is the violated invariant's name (the Oracle* constants).
	Oracle string `json:"oracle"`
	// Detail describes the concrete violation.
	Detail string `json:"detail"`
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

// OracleReport is the verdict of all oracles on one run.
type OracleReport struct {
	// Checked lists the oracles that were evaluated, sorted.
	Checked []string `json:"checked"`
	// Skipped maps each non-applicable oracle to the reason it was not
	// evaluated (e.g. termination under a lossy plan).
	Skipped map[string]string `json:"skipped,omitempty"`
	// Violations holds the findings; empty means every checked invariant
	// held.
	Violations []Violation `json:"violations,omitempty"`
}

// OK reports whether every checked invariant held.
func (r OracleReport) OK() bool { return len(r.Violations) == 0 }

// Strings renders the violations as "oracle: detail" lines.
func (r OracleReport) Strings() []string {
	out := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.String()
	}
	return out
}

// String summarizes the report on one line.
func (r OracleReport) String() string {
	if r.OK() {
		return fmt.Sprintf("ok (%s)", strings.Join(r.Checked, ", "))
	}
	return strings.Join(r.Strings(), "; ")
}

// Oracles checks the protocol invariants on one run. Build one per run
// with NewOracles, optionally attach its Observer (through WithObserver)
// to stream-check decision events mid-run, and call Report with the run's
// result to obtain the verdict.
//
// The stream hook and the final check are complementary: the observer
// sees the execution as it happened, and Report cross-checks the two
// views (a node emitting two decision events, decision events for nodes
// the end state says never decided, deciders the stream lost) besides
// re-deriving the end-state invariants from node state — so oracles
// remain fully usable without an observer, which is how RunSuite applies
// them to every sweep cell.
type Oracles struct {
	n        int
	knowFrac float64
	plan     FaultPlan
	// scenarioLossy records that the run's scenario carries a link-loss
	// model, and adaptive that an adaptive adversary silences live nodes
	// mid-run — either one destroys messages, so the termination oracle
	// (which assumes reliable channels) is skipped exactly as for lossy
	// fault plans.
	scenarioLossy bool
	adaptive      bool
	// suiteMode skips the termination oracle: sweeps report liveness as
	// the cell's agreement rate (termination is a w.h.p. guarantee, not a
	// per-seed one), so only safety findings count as violations there.
	suiteMode bool
	// attached records that the stream hook was handed out, so Report can
	// distinguish "no observer" from "observer saw no decisions".
	attached bool

	mu        sync.Mutex
	decisions map[NodeID]int
	streamed  []Violation
}

// NewOracles builds the oracle set for one run of the given configuration.
func NewOracles(cfg Config) *Oracles {
	o := &Oracles{
		n:         cfg.n,
		knowFrac:  cfg.knowFrac,
		plan:      cfg.faults,
		adaptive:  adaptiveKind(cfg.advName) != "" && cfg.corruptFrac > 0,
		decisions: make(map[NodeID]int),
	}
	if cfg.scenario != nil {
		o.scenarioLossy = cfg.scenario.Loss > 0
	}
	return o
}

// aePrecondition reports whether the almost-everywhere precondition of
// §3.1 holds: at least 3/4 of correct nodes start out knowing gstring.
func (o *Oracles) aePrecondition() bool { return o.knowFrac >= 0.75 }

// Observer returns the stream hook: it watches EventDecision events and
// records single-decision violations live. Attach it with WithObserver;
// it is safe for the concurrent runtimes (which fan buffered events in at
// quiescence).
func (o *Oracles) Observer() Observer {
	o.attached = true
	return func(ev Event) {
		if ev.Type != EventDecision {
			return
		}
		o.mu.Lock()
		o.decisions[ev.To]++
		if n := o.decisions[ev.To]; n == 2 { // report once per node
			o.streamed = append(o.streamed, Violation{
				Oracle: OracleSingleDecision,
				Detail: fmt.Sprintf("node %d emitted a second decision event at time %d", ev.To, ev.Time),
			})
		}
		o.mu.Unlock()
	}
}

// Report evaluates every applicable oracle against the finished run and
// any stream observations, and returns the verdict.
func (o *Oracles) Report(res *AERResult) OracleReport {
	rep := OracleReport{Skipped: map[string]string{}}
	checked := map[string]bool{}
	check := func(name string, violated bool, detail string, args ...any) {
		checked[name] = true
		if violated {
			rep.Violations = append(rep.Violations, Violation{Oracle: name, Detail: fmt.Sprintf(detail, args...)})
		}
	}

	check(OracleAgreement, res.DistinctDecisions > 1,
		"%d distinct values decided by correct nodes (%d on gstring, %d on other values)",
		res.DistinctDecisions, res.DecidedGString, res.DecidedOther)

	if o.aePrecondition() {
		check(OracleValidity, res.DecidedOther > 0,
			"%d correct nodes decided a non-gstring value despite the a.e. precondition (knowFrac=%.2f)",
			res.DecidedOther, o.knowFrac)
	} else {
		rep.Skipped[OracleValidity] = fmt.Sprintf("knowFrac %.2f below the 3/4 a.e. precondition", o.knowFrac)
	}

	check(OracleCertificates, res.CertDeficits > 0,
		"%d deciders hold no strict poll-list majority certificate for their decision",
		res.CertDeficits)

	o.mu.Lock()
	streamed := append([]Violation(nil), o.streamed...)
	deciders := len(o.decisions)
	o.mu.Unlock()
	if o.attached {
		checked[OracleSingleDecision] = true
		rep.Violations = append(rep.Violations, streamed...)
		// Stream/state consistency. More event-emitting nodes than final
		// deciders is always wrong. Fewer is only judged when the stream
		// carried at least one decision: a transport that never emits
		// decision events (TCP) must not be misread as losing them.
		if deciders > res.Decided {
			check(OracleSingleDecision, true,
				"decision events for %d nodes but the end state records only %d deciders", deciders, res.Decided)
		} else if deciders > 0 && deciders < res.Decided {
			check(OracleSingleDecision, true,
				"only %d of %d deciders emitted a decision event — the stream lost decisions", deciders, res.Decided)
		}
	} else {
		rep.Skipped[OracleSingleDecision] = "no observer attached (stream oracle needs WithObserver)"
	}

	if o.suiteMode {
		rep.Skipped[OracleTermination] = "suite mode: liveness is reported as the cell's agreement rate"
	} else if !o.plan.Lossless() {
		rep.Skipped[OracleTermination] = "fault plan can destroy messages (drops, partitions or crashes)"
	} else if o.scenarioLossy {
		rep.Skipped[OracleTermination] = "scenario link model can destroy messages (loss > 0)"
	} else if o.adaptive {
		rep.Skipped[OracleTermination] = "adaptive adversary silences nodes mid-run"
	} else {
		check(OracleTermination, res.Decided < res.Correct,
			"%d of %d correct nodes never decided under a lossless plan",
			res.Correct-res.Decided, res.Correct)
	}

	for name := range checked {
		rep.Checked = append(rep.Checked, name)
	}
	sort.Strings(rep.Checked)
	if len(rep.Skipped) == 0 {
		rep.Skipped = nil
	}
	return rep
}

// CheckLogDurability evaluates the log-durability oracle across a crash
// boundary: before is the committed log observed before the crash (any
// prefix a client saw), after the log recovered on restart. The oracle
// holds iff after extends before — same length or longer, and identical
// on the common prefix (sequence, value, payload count). Violations mean
// the store surfaced a commit it had not made durable.
func CheckLogDurability(before, after []LogEntry) OracleReport {
	rep := OracleReport{Checked: []string{OracleLogDurability}}
	violate := func(detail string, args ...any) {
		rep.Violations = append(rep.Violations, Violation{Oracle: OracleLogDurability, Detail: fmt.Sprintf(detail, args...)})
	}

	if len(after) < len(before) {
		violate("restart regressed the committed log from %d to %d entries", len(before), len(after))
	}
	for i := range before {
		if i >= len(after) {
			break
		}
		b, a := before[i], after[i]
		switch {
		case a.Seq != b.Seq:
			violate("entry %d changed seq across restart: %d before, %d after", i, b.Seq, a.Seq)
		case a.Value != b.Value:
			violate("seq %d changed value across restart: %s before, %s after", b.Seq, b.Value, a.Value)
		case a.PayloadCount != b.PayloadCount:
			violate("seq %d changed payload count across restart: %d before, %d after", b.Seq, b.PayloadCount, a.PayloadCount)
		}
	}
	return rep
}

// CheckInvariants runs the end-state oracles on a finished run without a
// stream hook: the one-call form used by RunSuite (Suite.CheckOracles)
// and the scenario fuzzer's corpus replays.
func CheckInvariants(cfg Config, res *AERResult) OracleReport {
	return NewOracles(cfg).Report(res)
}

// CheckLogInvariants evaluates the cross-instance oracles on a committed
// decision log: sequence contiguity, per-instance decider agreement,
// certificate re-derivability and (under the a.e. precondition) batch-
// digest validity. knowFrac is the log's configured knowledge fraction,
// which gates the validity oracle exactly as in single-shot runs.
func CheckLogInvariants(entries []LogEntry, knowFrac float64) OracleReport {
	rep := OracleReport{Skipped: map[string]string{}}
	checked := map[string]bool{}
	check := func(name string, violated bool, detail string, args ...any) {
		checked[name] = true
		if violated {
			rep.Violations = append(rep.Violations, Violation{Oracle: name, Detail: fmt.Sprintf(detail, args...)})
		}
	}

	checked[OracleLogGapFree] = true
	checked[OracleLogAgreement] = true
	checked[OracleLogCertificates] = true
	validity := knowFrac >= 0.75
	if validity {
		checked[OracleLogValidity] = true
	} else {
		rep.Skipped[OracleLogValidity] = fmt.Sprintf("knowFrac %.2f below the 3/4 a.e. precondition", knowFrac)
	}
	for i, e := range entries {
		check(OracleLogGapFree, e.Seq != uint64(i),
			"entry %d carries seq %d — the committed sequence has a gap or a reorder", i, e.Seq)
		check(OracleLogAgreement, e.DistinctValues > 1,
			"seq %d committed with %d distinct decided values among %d deciders", e.Seq, e.DistinctValues, e.Deciders)
		check(OracleLogCertificates, e.CertDeficits > 0,
			"seq %d has %d deciders without a strict poll-list majority certificate", e.Seq, e.CertDeficits)
		if validity {
			check(OracleLogValidity, !e.MatchesProposal,
				"seq %d committed a value that is not the proposed batch digest", e.Seq)
		}
	}

	for name := range checked {
		rep.Checked = append(rep.Checked, name)
	}
	sort.Strings(rep.Checked)
	if len(rep.Skipped) == 0 {
		rep.Skipped = nil
	}
	return rep
}
