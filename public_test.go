// Tests in this file run in the external fastba_test package on purpose:
// they prove the extension points — custom adversaries, schedulers and
// observers — work through the exported surface alone, exactly as an
// importing module would use them, without touching internal/.
package fastba_test

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/fastba/fastba"
)

// chaffMsg is a message type the library has never seen.
type chaffMsg struct{}

func (chaffMsg) WireSize() int { return 32 }
func (chaffMsg) Kind() string  { return "chaff" }

// chaffNode sprays a fixed fan of chaff at deterministic targets.
type chaffNode struct {
	env fastba.AdversaryEnv
	id  int
}

func (c *chaffNode) Init(ctx fastba.NodeContext) {
	for k := 0; k < c.env.QuorumSize; k++ {
		ctx.Send((c.id+k*7+int(c.env.Seed))%c.env.N, chaffMsg{})
	}
}

func (c *chaffNode) Deliver(fastba.NodeContext, fastba.NodeID, fastba.Message) {}

func registerChaffOnce(t *testing.T) {
	t.Helper()
	err := fastba.RegisterAdversary("test-chaff",
		func(env fastba.AdversaryEnv, id int) fastba.ProtocolNode {
			return &chaffNode{env: env, id: id}
		})
	if err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
}

func TestCustomAdversaryThroughPublicAPI(t *testing.T) {
	registerChaffOnce(t)
	res, err := fastba.RunAER(fastba.NewConfig(96,
		fastba.WithSeed(4),
		fastba.WithAdversaryName("test-chaff"),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
	))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement {
		t.Fatalf("chaff adversary broke agreement: %+v", res)
	}
	if res.MessagesByKind["chaff"] == 0 {
		t.Fatal("custom message kind not metered")
	}
	// The custom strategy also drives a full sweep.
	rep, err := fastba.RunSuite(context.Background(), fastba.Suite{
		Sweep: fastba.Sweep{
			Ns:          []int{64},
			Seeds:       fastba.Seeds(2),
			Adversaries: []string{"silent", "test-chaff"},
			Options:     []fastba.Option{fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 || rep.Cells[1].Cell.Adversary != "test-chaff" {
		t.Fatalf("custom adversary missing from report: %+v", rep.Cells)
	}
}

func TestRegisterAdversaryRejections(t *testing.T) {
	mk := func(fastba.AdversaryEnv, int) fastba.ProtocolNode { return nil }
	if err := fastba.RegisterAdversary("", mk); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := fastba.RegisterAdversary("nameless", nil); err == nil {
		t.Fatal("nil maker accepted")
	}
	for _, reserved := range []string{"none", "silent"} {
		if err := fastba.RegisterAdversary(reserved, mk); err == nil {
			t.Fatalf("reserved name %q accepted", reserved)
		}
	}
	registerChaffOnce(t)
	if err := fastba.RegisterAdversary("test-chaff", mk); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	names := fastba.RegisteredAdversaries()
	joined := strings.Join(names, ",")
	for _, want := range []string{"none", "silent", "flood", "equivocate", "corner", "test-chaff"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("RegisteredAdversaries() = %v missing %q", names, want)
		}
	}
}

// lifoScheduler delivers the newest message first — a delivery order the
// library does not ship.
type lifoScheduler struct{ q []fastba.Envelope }

func (s *lifoScheduler) Push(e fastba.Envelope) { s.q = append(s.q, e) }
func (s *lifoScheduler) Len() int               { return len(s.q) }
func (s *lifoScheduler) Pop() fastba.Envelope {
	e := s.q[len(s.q)-1]
	s.q = s.q[:len(s.q)-1]
	return e
}

func TestCustomSchedulerThroughPublicAPI(t *testing.T) {
	cfg := fastba.NewConfig(64,
		fastba.WithSeed(3),
		fastba.WithModel(fastba.Async),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
		fastba.WithScheduler(func(n int, seed uint64) fastba.Scheduler { return &lifoScheduler{} }),
	)
	a, err := fastba.RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Agreement {
		t.Fatalf("LIFO order broke agreement: %+v", a)
	}
	b, err := fastba.RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.MeanBitsPerNode != b.MeanBitsPerNode {
		t.Fatal("custom-scheduler run not deterministic")
	}
	// The built-in constructors are usable as custom makers too.
	fifo, err := fastba.RunAER(fastba.NewConfig(64,
		fastba.WithSeed(3), fastba.WithModel(fastba.Async),
		fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92),
		fastba.WithScheduler(func(n int, seed uint64) fastba.Scheduler { return fastba.NewFIFOScheduler() }),
	))
	if err != nil {
		t.Fatal(err)
	}
	if !fifo.Agreement {
		t.Fatalf("FIFO order broke agreement: %+v", fifo)
	}
}

func TestObserverEventStream(t *testing.T) {
	var delivers, decisions int64
	lastRound := 0
	roundsMonotone := true
	res, err := fastba.RunAER(fastba.NewConfig(64,
		fastba.WithSeed(2),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
		fastba.WithObserver(func(ev fastba.Event) {
			switch ev.Type {
			case fastba.EventDeliver:
				delivers++
				if ev.Kind == "" || ev.Size < 0 {
					t.Errorf("malformed deliver event: %+v", ev)
				}
			case fastba.EventRound:
				if ev.Time <= lastRound {
					roundsMonotone = false
				}
				lastRound = ev.Time
			case fastba.EventDecision:
				decisions++
			}
		}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if delivers != res.TotalMessages {
		t.Fatalf("observed %d deliveries, metrics say %d", delivers, res.TotalMessages)
	}
	if decisions != int64(res.Decided) {
		t.Fatalf("observed %d decisions, result says %d", decisions, res.Decided)
	}
	if !roundsMonotone || lastRound != res.Time {
		t.Fatalf("round events broken: last %d vs time %d", lastRound, res.Time)
	}
}

func TestObserverUnderGoroutinesModel(t *testing.T) {
	var delivers int64
	var decisionTimes []int
	res, err := fastba.RunAER(fastba.NewConfig(64,
		fastba.WithSeed(2),
		fastba.WithModel(fastba.Goroutines),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
		fastba.WithObserver(func(ev fastba.Event) {
			switch ev.Type {
			case fastba.EventDeliver:
				delivers++
			case fastba.EventDecision:
				decisionTimes = append(decisionTimes, ev.Time)
			}
		}),
	))
	if err != nil {
		t.Fatal(err)
	}
	if delivers != res.TotalMessages {
		t.Fatalf("observed %d deliveries, metrics say %d", delivers, res.TotalMessages)
	}
	// The goroutine runtime buffers observations and fans them in at
	// quiescence; decision events must still carry each node's actual
	// decision time, not the replay position.
	want := append([]int(nil), res.DecisionTimes...)
	got := append([]int(nil), decisionTimes...)
	sort.Ints(want)
	sort.Ints(got)
	if len(got) != len(want) {
		t.Fatalf("observed %d decision events, result has %d decision times", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("decision times diverge: observed %v, result %v", got, want)
		}
	}
}

func TestPublicTrace(t *testing.T) {
	tr := fastba.NewTrace(64)
	res, err := fastba.RunAER(fastba.NewConfig(64,
		fastba.WithSeed(2),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
		fastba.WithObserver(tr.Observer()),
	))
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalDeliveries() != res.TotalMessages || tr.MaxTime() != res.Time {
		t.Fatalf("trace disagrees with metrics: %d/%d vs %d/%d",
			tr.TotalDeliveries(), tr.MaxTime(), res.TotalMessages, res.Time)
	}
	var buf bytes.Buffer
	tr.Timeline(&buf)
	if !strings.Contains(buf.String(), "push") {
		t.Fatalf("timeline missing push phase:\n%s", buf.String())
	}
	buf.Reset()
	tr.Hotspots(&buf, 3)
	if len(strings.Split(strings.TrimSpace(buf.String()), "\n")) != 3 {
		t.Fatalf("hotspots wrong shape:\n%s", buf.String())
	}
}

func TestRunTCPPublic(t *testing.T) {
	res, err := fastba.RunTCP(context.Background(), fastba.NewConfig(16,
		fastba.WithSeed(5),
		fastba.WithCorruptFrac(0.05),
		fastba.WithKnowFrac(0.92),
	), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || res.TimedOut {
		t.Fatalf("TCP run failed: %+v", res)
	}
	if res.MeanBitsPerNode <= 0 || res.MaxBitsPerNode < int64(res.MeanBitsPerNode) {
		t.Fatalf("degenerate TCP metrics: %+v", res)
	}
}

func TestRunSuiteTCPKind(t *testing.T) {
	rep, err := fastba.RunSuite(context.Background(), fastba.Suite{
		Kind:       fastba.KindTCP,
		TCPTimeout: 30 * time.Second,
		Workers:    2,
		Sweep: fastba.Sweep{
			Ns:      []int{16},
			Seeds:   fastba.Seeds(2),
			Options: []fastba.Option{fastba.WithCorruptFrac(0.05), fastba.WithKnowFrac(0.92)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cr := rep.Cells[0]
	if cr.AgreeRuns != cr.Runs || cr.Failures != 0 {
		t.Fatalf("TCP suite cell: %+v", cr)
	}
}
