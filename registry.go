package fastba

import (
	"fmt"
	"sort"
	"sync"

	"github.com/fastba/fastba/internal/adversary"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/simnet"
)

// The aliases below are the node-level extension surface: they let code
// outside this module implement protocol actors (custom Byzantine
// strategies via RegisterAdversary) and delivery orders (custom Schedulers
// via WithScheduler) against the same interfaces the built-in protocols
// use, without reaching into internal/.

// NodeID identifies a node; nodes are numbered 0..n-1.
type NodeID = simnet.NodeID

// Message is a protocol message: immutable after sending, sized for bit
// metering, and named for per-kind accounting. Custom adversaries may send
// their own Message implementations through the simulation runners (the
// TCP runner silently drops message types it has no codec for).
type Message = simnet.Message

// NodeContext is handed to a node for every activation; it is only valid
// for the duration of the call.
type NodeContext = simnet.Context

// ProtocolNode is a protocol actor driven by the runners. Runners
// guarantee Init and Deliver calls on one node never overlap.
type ProtocolNode = simnet.Node

// Envelope is a message in flight, as seen by Schedulers and Rushers.
type Envelope = simnet.Envelope

// Rusher is implemented by Byzantine nodes that exploit the rushing
// synchronous model: after the correct nodes of a round have produced
// their messages, the runner shows them to each Rusher, which may then
// send its own messages within the same round.
type Rusher = simnet.Rusher

// Scheduler decides the delivery order of in-flight messages in an
// asynchronous execution.
type Scheduler = simnet.Scheduler

// NewFIFOScheduler returns a first-in-first-out scheduler: the most benign
// asynchronous network.
func NewFIFOScheduler() Scheduler { return simnet.NewFIFO() }

// NewRandomScheduler returns a seeded random-order scheduler — the
// delivery order behind the Async model.
func NewRandomScheduler(seed uint64) Scheduler { return simnet.NewRandom(seed) }

// SchedulerMaker builds a fresh Scheduler for one asynchronous run over n
// nodes. It must derive any randomness from seed so runs stay
// deterministic per configuration.
type SchedulerMaker func(n int, seed uint64) Scheduler

// AdversaryEnv is the full-information view handed to a Byzantine strategy
// for each of its nodes (§2.1: the adversary knows the whole network and
// coordinates all corrupted nodes). Fields are shared across nodes and
// must be treated as read-only.
type AdversaryEnv struct {
	// N is the system size.
	N int
	// Seed is the run's master seed; derive strategy randomness from it.
	Seed uint64
	// Corrupt marks the Byzantine nodes.
	Corrupt []bool
	// GString is the raw global string the correct nodes try to agree on.
	GString []byte
	// StringBits, QuorumSize and PollSize describe the protocol geometry.
	StringBits int
	QuorumSize int
	PollSize   int

	// env carries the internal full-information view (samplers included);
	// only built-in strategies can use it.
	env adversary.Env
}

// AdversaryMaker builds the Byzantine node with the given ID. One maker
// call per corrupted node per run.
type AdversaryMaker func(env AdversaryEnv, id int) ProtocolNode

var advRegistry = struct {
	sync.RWMutex
	m map[string]AdversaryMaker
}{m: make(map[string]AdversaryMaker)}

// RegisterAdversary adds a Byzantine strategy under the given name, making
// it selectable with WithAdversaryName and usable as a Sweep.Adversaries
// axis. Names must be non-empty and unused; "none" and "silent" are
// reserved for the built-in passive behaviours. Registration is
// concurrency-safe and usually done from init or main.
func RegisterAdversary(name string, maker AdversaryMaker) error {
	if name == "" || maker == nil {
		return fmt.Errorf("fastba: RegisterAdversary needs a name and a maker")
	}
	if name == AdversaryNone.String() || name == AdversarySilent.String() {
		return fmt.Errorf("fastba: adversary name %q is reserved", name)
	}
	advRegistry.Lock()
	defer advRegistry.Unlock()
	if _, dup := advRegistry.m[name]; dup {
		return fmt.Errorf("fastba: adversary %q already registered", name)
	}
	advRegistry.m[name] = maker
	return nil
}

// RegisteredAdversaries returns every selectable adversary name, sorted —
// the built-in enums, the parameterized built-ins and any custom
// registrations.
func RegisteredAdversaries() []string {
	advRegistry.RLock()
	names := []string{AdversaryNone.String(), AdversarySilent.String()}
	for name := range advRegistry.m {
		names = append(names, name)
	}
	advRegistry.RUnlock()
	sort.Strings(names)
	return names
}

// lookupAdversary resolves a name to its maker. Passive behaviours
// ("none", "silent") resolve to a nil maker; unknown names error.
func lookupAdversary(name string) (AdversaryMaker, error) {
	if name == AdversaryNone.String() || name == AdversarySilent.String() {
		return nil, nil
	}
	advRegistry.RLock()
	maker, ok := advRegistry.m[name]
	advRegistry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fastba: unknown adversary %q (registered: %v)", name, RegisteredAdversaries())
	}
	return maker, nil
}

// builtinMaker adapts an internal strategy to the public maker signature.
func builtinMaker(st adversary.Strategy) AdversaryMaker {
	return func(env AdversaryEnv, id int) ProtocolNode { return st.New(env.env, id) }
}

// FloodStrategy returns a parameterized variant of the built-in flooding
// adversary: each Byzantine node sprays strings bogus candidates at fanout
// targets each (0 = package defaults). Register it under a custom name to
// sweep flooding intensity.
func FloodStrategy(strings, fanout int) AdversaryMaker {
	return builtinMaker(adversary.Flood{Strings: strings, Fanout: fanout})
}

// CornerStrategy returns the Lemma 6 answer-budget overload attack,
// optionally in its rushing flavour.
func CornerStrategy(rushing bool) AdversaryMaker {
	return builtinMaker(adversary.Corner{Rushing: rushing})
}

// SilencedStrategy wraps any Byzantine strategy so its nodes fall silent
// from logical time `after` on: deliveries are still consumed (the
// adversary keeps observing the network) but nothing is sent anymore —
// Byzantine fail-silence mid-protocol, the attack shape where a node
// first does damage and then withholds the cooperation the protocol may
// be counting on (e.g. poll answers it is the recorded answerer for).
// Rushing behaviours of the inner strategy degrade to their non-rushing
// form. The built-ins "flood-then-silent" and "equivocate-then-silent"
// are registered through this combinator.
func SilencedStrategy(inner AdversaryMaker, after int) AdversaryMaker {
	return func(env AdversaryEnv, id int) ProtocolNode {
		return &silencedNode{inner: inner(env, id), after: after}
	}
}

type silencedNode struct {
	inner ProtocolNode
	after int
}

func (s *silencedNode) Init(ctx NodeContext) {
	s.inner.Init(&mutedCtx{NodeContext: ctx, after: s.after})
}

func (s *silencedNode) Deliver(ctx NodeContext, from NodeID, m Message) {
	s.inner.Deliver(&mutedCtx{NodeContext: ctx, after: s.after}, from, m)
}

// mutedCtx swallows sends once the silence window opens; Now and any
// other context behaviour pass through.
type mutedCtx struct {
	NodeContext
	after int
}

func (c *mutedCtx) Send(to NodeID, m Message) {
	if c.Now() < c.after {
		c.NodeContext.Send(to, m)
	}
}

func mustRegister(name string, maker AdversaryMaker) {
	if err := RegisterAdversary(name, maker); err != nil {
		panic(err)
	}
}

// The Adversary enum values register as built-in strategies under their
// String names, so the enum path and the registry path are one mechanism.
func init() {
	mustRegister(AdversaryFlood.String(), builtinMaker(adversary.Flood{}))
	mustRegister(AdversaryEquivocate.String(), builtinMaker(adversary.Equivocate{}))
	mustRegister(AdversaryCorner.String(), CornerStrategy(false))
	mustRegister(AdversaryCornerRushing.String(), CornerStrategy(true))
	// Fault-flavoured Byzantine behaviours for hostile-network testing:
	// do damage early (bogus pushes, equivocation), then withhold all
	// cooperation from time 2 on — past the push phase, before most polls
	// resolve.
	mustRegister("flood-then-silent", SilencedStrategy(builtinMaker(adversary.Flood{}), 2))
	mustRegister("equivocate-then-silent", SilencedStrategy(builtinMaker(adversary.Equivocate{}), 2))
}

// newAdversaryEnv builds the public view over a scenario.
func newAdversaryEnv(sc *core.Scenario) AdversaryEnv {
	return AdversaryEnv{
		N:          sc.Params.N,
		Seed:       sc.Seed,
		Corrupt:    sc.Corrupt,
		GString:    sc.GString.Bytes(),
		StringBits: sc.Params.StringBits,
		QuorumSize: sc.Params.QuorumSize,
		PollSize:   sc.Params.PollSize,
		env:        adversary.FromScenario(sc),
	}
}
