package fastba

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/fastba/fastba/internal/metrics"
)

// Stat summarizes one metric over a cell's successful runs.
type Stat struct {
	Mean float64 `json:"mean"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

func newStat(vals []float64) Stat {
	if len(vals) == 0 {
		return Stat{}
	}
	return Stat{
		Mean: metrics.Mean(vals),
		Min:  metrics.Quantile(vals, 0),
		Max:  metrics.Quantile(vals, 1),
		P50:  metrics.Quantile(vals, 0.5),
		P95:  metrics.Quantile(vals, 0.95),
	}
}

// CellReport aggregates all seeds of one sweep cell.
type CellReport struct {
	Cell Cell `json:"cell"`
	// Runs counts attempted runs; Failures those that errored (failed
	// runs carry no metrics and are excluded from the statistics).
	Runs     int `json:"runs"`
	Failures int `json:"failures"`
	// AgreeRuns counts runs with full agreement; AgreementRate is the
	// fraction over successful runs.
	AgreeRuns     int     `json:"agreeRuns"`
	AgreementRate float64 `json:"agreementRate"`
	// ValidityViolations counts runs in which any correct node decided a
	// non-gstring value (must stay 0 — Lemma 7).
	ValidityViolations int `json:"validityViolations"`
	// OracleViolations counts runs with at least one invariant-oracle
	// finding (populated when Suite.CheckOracles is set; must stay 0).
	OracleViolations int `json:"oracleViolations,omitempty"`
	// WorstDecidedFrac is the minimum over runs of the fraction of
	// correct nodes deciding gstring (0 on a validity violation).
	WorstDecidedFrac float64 `json:"worstDecidedFrac"`
	// Time, MeanBits, MaxBits and Deferred summarize the per-run metrics
	// (time rounds/causal depth — wall milliseconds for KindTCP).
	Time     Stat `json:"time"`
	MeanBits Stat `json:"meanBits"`
	MaxBits  Stat `json:"maxBits"`
	Deferred Stat `json:"deferred"`
	// Load summarizes sustained-load metrics (KindLog cells only).
	Load *LoadCellStats `json:"load,omitempty"`
	// Records holds the raw per-seed outcomes for custom post-processing
	// (growth fits, decision-time percentiles, coverage counts, ...).
	Records []RunRecord `json:"records"`
}

// Record returns the record for the given seed, or the zero record.
func (c *CellReport) Record(seed uint64) RunRecord {
	for _, r := range c.Records {
		if r.Seed == seed {
			return r
		}
	}
	return RunRecord{}
}

// LoadCellStats aggregates one KindLog cell's sustained-load metrics over
// its seeds: committed-entry and payload throughput, commit-latency
// percentiles-of-percentiles, and the merged latency histogram.
type LoadCellStats struct {
	Committed      Stat         `json:"committed"`
	EntriesPerSec  Stat         `json:"entriesPerSec"`
	PayloadsPerSec Stat         `json:"payloadsPerSec"`
	CommitP50Ms    Stat         `json:"commitP50Ms"`
	CommitP99Ms    Stat         `json:"commitP99Ms"`
	Hist           []HistBucket `json:"hist,omitempty"`
}

// mergeHist accumulates one run's latency histogram into the cell's
// (bucket edges are fixed, so merging is positional).
func mergeHist(into []HistBucket, h []HistBucket) []HistBucket {
	if len(h) == 0 {
		return into
	}
	if len(into) == 0 {
		return append([]HistBucket(nil), h...)
	}
	for i := range into {
		if i < len(h) {
			into[i].Count += h[i].Count
		}
	}
	return into
}

// Report is the aggregated outcome of RunSuite: one CellReport per sweep
// cell, in sweep expansion order. It is JSON-marshalable as a whole.
type Report struct {
	Suite string        `json:"suite"`
	Kind  string        `json:"kind"`
	Cells []*CellReport `json:"cells"`
}

// aggregate groups run records into cell reports, preserving expansion
// order. It is order-independent in the records' completion order.
func aggregate(s Suite, runs []plannedRun, records []RunRecord) *Report {
	rep := &Report{Suite: s.Name, Kind: s.Kind.String()}
	byCell := make(map[Cell]*CellReport)
	for i := range runs {
		cr := byCell[runs[i].cell]
		if cr == nil {
			cr = &CellReport{Cell: runs[i].cell, WorstDecidedFrac: 1}
			byCell[runs[i].cell] = cr
			rep.Cells = append(rep.Cells, cr)
		}
		cr.Records = append(cr.Records, records[i])
	}
	for _, cr := range rep.Cells {
		var times, bits, maxBits, deferred []float64
		var committed, eps, pps, p50, p99 []float64
		var hist []HistBucket
		for _, rec := range cr.Records {
			cr.Runs++
			if rec.Err != "" {
				cr.Failures++
				continue
			}
			if s.Kind == KindLog {
				committed = append(committed, float64(rec.Committed))
				eps = append(eps, rec.EntriesPerSec)
				pps = append(pps, rec.PayloadsPerSec)
				p50 = append(p50, rec.CommitP50Ms)
				p99 = append(p99, rec.CommitP99Ms)
				hist = mergeHist(hist, rec.LatencyHist)
			}
			if rec.Agreement {
				cr.AgreeRuns++
			}
			if rec.DecidedOther > 0 {
				cr.ValidityViolations++
			}
			if len(rec.OracleViolations) > 0 {
				cr.OracleViolations++
			}
			if f := rec.DecidedFrac(); f < cr.WorstDecidedFrac {
				cr.WorstDecidedFrac = f
			}
			times = append(times, float64(rec.Time))
			bits = append(bits, rec.MeanBitsPerNode)
			maxBits = append(maxBits, float64(rec.MaxBitsPerNode))
			deferred = append(deferred, float64(rec.AnswersDeferred))
		}
		if ok := cr.Runs - cr.Failures; ok > 0 {
			cr.AgreementRate = float64(cr.AgreeRuns) / float64(ok)
		} else {
			cr.WorstDecidedFrac = 0
		}
		cr.Time = newStat(times)
		cr.MeanBits = newStat(bits)
		cr.MaxBits = newStat(maxBits)
		cr.Deferred = newStat(deferred)
		if s.Kind == KindLog && len(committed) > 0 {
			cr.Load = &LoadCellStats{
				Committed:      newStat(committed),
				EntriesPerSec:  newStat(eps),
				PayloadsPerSec: newStat(pps),
				CommitP50Ms:    newStat(p50),
				CommitP99Ms:    newStat(p99),
				Hist:           hist,
			}
		}
	}
	return rep
}

// Err returns an error describing the first failed run, or nil when every
// run succeeded. Sweeps tolerate per-run failures (they are recorded and
// excluded from statistics); callers producing artifacts that must not
// silently carry holes use this to fail hard instead.
func (r *Report) Err() error {
	for _, cr := range r.Cells {
		for _, rec := range cr.Records {
			if rec.Err != "" {
				return fmt.Errorf("fastba: suite %q run %v seed %d failed: %s", r.Suite, rec.Cell, rec.Seed, rec.Err)
			}
		}
	}
	return nil
}

// Find returns the cell reports whose cell satisfies pred, in order.
func (r *Report) Find(pred func(Cell) bool) []*CellReport {
	var out []*CellReport
	for _, cr := range r.Cells {
		if pred(cr.Cell) {
			out = append(out, cr)
		}
	}
	return out
}

// WriteJSON writes the full report (cells and raw records) as indented
// JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the report as a fixed-width ASCII table in the style of
// the paper's Figure 1: one row per cell with run counts, agreement,
// time and communication statistics.
func (r *Report) Render(w io.Writer) {
	title := r.Suite
	if title == "" {
		title = "suite"
	}
	if r.Kind == KindLog.String() {
		r.renderLoad(w, title)
		return
	}
	timeCol := "time μ/max"
	if r.Kind == KindTCP.String() {
		timeCol = "wall ms μ/max"
	}
	tb := metrics.NewTable(
		fmt.Sprintf("%s (%s)", title, r.Kind),
		"n", "model", "adversary", "corrupt", "know", "fault", "scenario", "variant", "runs", "agree",
		timeCol, "bits/node μ", "max bits/node", "max/μ")
	for _, c := range r.Cells {
		ratio := "-"
		if c.MeanBits.Mean > 0 {
			ratio = fmt.Sprintf("%.1f", c.MaxBits.Mean/c.MeanBits.Mean)
		}
		agree := fmt.Sprintf("%d/%d", c.AgreeRuns, c.Runs)
		if c.Failures > 0 {
			agree += fmt.Sprintf(" (%d err)", c.Failures)
		}
		if c.OracleViolations > 0 {
			agree += fmt.Sprintf(" (%d VIOL)", c.OracleViolations)
		}
		tb.Add(
			fmt.Sprint(c.Cell.N), c.Cell.Model, c.Cell.Adversary,
			fmt.Sprintf("%.2f", c.Cell.CorruptFrac), fmt.Sprintf("%.2f", c.Cell.KnowFrac),
			c.Cell.Fault, c.Cell.Scenario, c.Cell.Variant, fmt.Sprint(c.Runs), agree,
			fmt.Sprintf("%.0f/%.0f", c.Time.Mean, c.Time.Max),
			metrics.Bits(c.MeanBits.Mean), metrics.Bits(c.MaxBits.Mean), ratio)
	}
	tb.Render(w)
}

// renderLoad renders a KindLog report: sustained-load throughput and
// commit-latency statistics per cell.
func (r *Report) renderLoad(w io.Writer, title string) {
	tb := metrics.NewTable(
		fmt.Sprintf("%s (%s)", title, r.Kind),
		"n", "workload", "fault", "variant", "runs", "ok",
		"commits μ", "entries/s μ", "payloads/s μ", "p50 ms", "p99 ms")
	for _, c := range r.Cells {
		ok := fmt.Sprintf("%d/%d", c.AgreeRuns, c.Runs)
		if c.Failures > 0 {
			ok += fmt.Sprintf(" (%d err)", c.Failures)
		}
		if c.OracleViolations > 0 {
			ok += fmt.Sprintf(" (%d VIOL)", c.OracleViolations)
		}
		load := c.Load
		if load == nil {
			load = &LoadCellStats{}
		}
		tb.Add(
			fmt.Sprint(c.Cell.N), c.Cell.Workload, c.Cell.Fault, c.Cell.Variant,
			fmt.Sprint(c.Runs), ok,
			fmt.Sprintf("%.1f", load.Committed.Mean),
			fmt.Sprintf("%.1f", load.EntriesPerSec.Mean),
			fmt.Sprintf("%.1f", load.PayloadsPerSec.Mean),
			fmt.Sprintf("%.1f", load.CommitP50Ms.Mean),
			fmt.Sprintf("%.1f", load.CommitP99Ms.Mean))
	}
	tb.Render(w)
}
