package fastba

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files instead of comparing")

// TestReportGolden locks the byte-level determinism of seeded sweeps: the
// same Suite must produce a byte-identical JSON Report across runs, Go
// versions and — most importantly — runtime refactors. (The pre-refactor
// capture of this file was the acceptance proof that the allocation-lean
// runtime-core refactor was behavior-preserving; it was regenerated when
// RunRecord gained the oracle fields, with determinism re-verified across
// repeated runs.)
//
// Regenerate (only after an intentional semantic or schema change) with:
//
//	go test -run TestReportGolden -update .
func TestReportGolden(t *testing.T) {
	rep, err := RunSuite(context.Background(), Suite{
		Name: "golden",
		Sweep: Sweep{
			Ns:          []int{32, 64},
			Seeds:       Seeds(3),
			Models:      []Model{SyncNonRushing, Async},
			Adversaries: []string{"silent", "flood"},
		},
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := rep.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_suite.json")
	if *updateGolden {
		if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("seeded sweep Report diverged from %s (run with -update after an intentional change);\n got %d bytes, want %d", path, got.Len(), len(want))
	}
}
