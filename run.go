package fastba

import (
	"context"
	"encoding/hex"
	"fmt"

	"github.com/fastba/fastba/internal/ae"
	"github.com/fastba/fastba/internal/baseline"
	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/scenario"
	"github.com/fastba/fastba/internal/simnet"
)

// AERResult reports one almost-everywhere-to-everywhere run.
type AERResult struct {
	// Agreement is the Lemma 9/10 success condition: every correct node
	// decided, and all decisions equal gstring.
	Agreement bool
	// GString is the hex encoding of the global string.
	GString string
	// Correct / Decided / DecidedGString / DecidedOther count correct
	// nodes and their decisions.
	Correct        int
	Decided        int
	DecidedGString int
	DecidedOther   int
	// Time is the number of synchronous rounds, or the maximum causal
	// depth under asynchrony (the paper's time complexity measure).
	Time int
	// LastDecision is the time of the latest decision.
	LastDecision int
	// MeanBitsPerNode / MaxBitsPerNode are the communication metrics of
	// Figure 1(a): amortized and worst-case per-node sent bits.
	MeanBitsPerNode float64
	MaxBitsPerNode  int64
	// TotalMessages counts delivered messages; MessagesByKind breaks the
	// sent messages down by protocol message type.
	TotalMessages  int64
	MessagesByKind map[string]int64
	// SumCandidates is Σ|L_x| over correct nodes (Lemma 4).
	SumCandidates int
	// AnswersDeferred counts budget-deferred answers (Lemma 6 overload).
	AnswersDeferred int
	// DecisionTimes holds each correct decider's decision time.
	DecisionTimes []int
	// PushesPerCorrect is the mean number of push-phase messages sent per
	// correct node (the Lemma 3 probe).
	PushesPerCorrect float64
	// CandidateCoverage is the fraction of correct nodes whose candidate
	// list contains gstring at the end of the run (the Lemma 5 probe).
	CandidateCoverage float64
	// DistinctDecisions counts the distinct values decided by correct
	// nodes — the agreement oracle's input (> 1 is an agreement
	// violation; 0 means nobody decided).
	DistinctDecisions int
	// CertDeficits counts deciders whose re-derived quorum certificate
	// falls short of the strict poll-list majority — the certificate
	// oracle's input (must stay 0 under every fault schedule).
	CertDeficits int
}

// RunAER executes the core protocol on a synthetic almost-everywhere
// population (the paper's §3.1 preconditions, controlled by WithKnowFrac
// and WithCorruptFrac).
func RunAER(cfg Config) (*AERResult, error) {
	return RunAERContext(context.Background(), cfg)
}

// RunAERContext is RunAER with cancellation: the deterministic runners
// poll ctx between rounds (sync) and delivery batches (async) and abandon
// the execution once it is done, returning ctx.Err().
func RunAERContext(ctx context.Context, cfg Config) (*AERResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sc, err := core.NewScenario(cfg.params, cfg.seed, core.ScenarioConfig{
		CorruptFrac: cfg.coreCorruptFrac(),
		KnowFrac:    cfg.knowFrac,
		SharedJunk:  cfg.sharedJunk,
		AdvBits:     1.0 / 3,
	})
	if err != nil {
		return nil, err
	}
	return runAEROnScenario(ctx, cfg, sc)
}

// coreCorruptFrac is the static corruption handed to the core population:
// adaptive adversaries spend the corruption budget online (the scenario
// relay silences their targets), so the core build stays uncorrupted.
func (c Config) coreCorruptFrac() float64 {
	if adaptiveKind(c.advName) != "" {
		return 0
	}
	return c.corruptFrac
}

// adaptiveBudget is the number of targets an adaptive adversary silences.
func (c Config) adaptiveBudget() int {
	return int(c.corruptFrac * float64(c.n))
}

func runAEROnScenario(ctx context.Context, cfg Config, sc *core.Scenario) (*AERResult, error) {
	mkByz, err := byzMaker(cfg, sc)
	if err != nil {
		return nil, err
	}
	nodes, correct := sc.Build(mkByz)
	m, err := execute(ctx, cfg, nodes, sc.Corrupt, correct)
	if err != nil {
		return nil, err
	}
	return summarize(sc, correct, m), nil
}

// byzMaker resolves the configured adversary through the registry to a
// node factory for core.Scenario.Build (nil factory = silent nodes).
func byzMaker(cfg Config, sc *core.Scenario) (func(id int) simnet.Node, error) {
	maker, err := lookupAdversary(cfg.advName)
	if err != nil || maker == nil {
		return nil, err
	}
	env := newAdversaryEnv(sc)
	return func(id int) simnet.Node { return maker(env, id) }, nil
}

// execute runs the node vector under the configured model.
func execute(ctx context.Context, cfg Config, nodes []simnet.Node, corrupt []bool, correct []*core.Node) (*simnet.Metrics, error) {
	nodes, plan, err := applyScenario(cfg, nodes)
	if err != nil {
		return nil, err
	}
	obs := streamObserver(cfg, correct)
	stop := func() bool { return ctx.Err() != nil }
	var m *simnet.Metrics
	switch cfg.model {
	case SyncNonRushing, SyncRushing:
		// Rushing is a property of the Byzantine nodes (simnet.Rusher);
		// the runner honours it whenever such nodes are present, which
		// only the rushing strategies install.
		r := simnet.NewSync(nodes, corrupt)
		r.Observe(obs)
		r.StopWhen(stop)
		if !plan.IsZero() {
			r.InjectFaults(plan)
		}
		m = r.Run(cfg.maxRounds)
	case Async, AsyncAdversarial:
		r := simnet.NewAsync(nodes, asyncScheduler(cfg, corrupt))
		r.Observe(obs)
		r.StopWhen(stop)
		if !plan.IsZero() {
			r.InjectFaults(plan)
		}
		m = r.Run()
	case Goroutines:
		// The goroutine runner has no safe preemption point; it runs to
		// quiescence and cancellation is honoured on return.
		r := simnet.NewGo(nodes)
		r.Observe(obs)
		if !plan.IsZero() {
			r.InjectFaults(plan)
		}
		m = r.Run()
	default:
		return nil, fmt.Errorf("fastba: unknown model %v", cfg.model)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// applyScenario lowers the configured scenario onto a run: it wraps the
// node vector in the gossip relay (carrying adaptive-adversary silencing)
// and merges the scenario's per-link latency/loss faults into the run's
// fault plan. Without a scenario it returns the inputs unchanged.
func applyScenario(cfg Config, nodes []simnet.Node) ([]simnet.Node, FaultPlan, error) {
	if cfg.scenario == nil {
		return nodes, cfg.faults, nil
	}
	spec := cfg.resolvedScenario()
	comp, err := scenario.Compile(spec, cfg.n)
	if err != nil {
		return nil, FaultPlan{}, err
	}
	kind := adaptiveKind(cfg.advName)
	if comp.Adj != nil || kind != "" {
		nodes = scenario.Wrap(nodes, comp, scenario.WrapConfig{
			AdaptiveKind: kind,
			Budget:       cfg.adaptiveBudget(),
			TriggerAt:    spec.TriggerAt,
		})
	}
	return nodes, mergeScenarioPlan(cfg.faults, comp, spec), nil
}

// mergeScenarioPlan appends the scenario's link faults to the configured
// plan. Scenario links come last, so an explicit WithFaults link override
// on the same directed link yields to the scenario's (the injector's
// sparse table keeps the last entry per link).
func mergeScenarioPlan(plan FaultPlan, comp *scenario.Compiled, spec Scenario) FaultPlan {
	if len(comp.Links) == 0 {
		return plan
	}
	merged := plan
	merged.Links = make([]LinkFault, 0, len(plan.Links)+len(comp.Links))
	merged.Links = append(merged.Links, plan.Links...)
	merged.Links = append(merged.Links, comp.Links...)
	if merged.Seed == 0 {
		merged.Seed = spec.Seed
	}
	return merged
}

// asyncScheduler picks the delivery order for the asynchronous models: a
// custom maker when configured, otherwise the model's built-in order.
func asyncScheduler(cfg Config, corrupt []bool) simnet.Scheduler {
	if cfg.schedMaker != nil {
		return cfg.schedMaker(len(corrupt), cfg.seed)
	}
	if cfg.model == AsyncAdversarial {
		pri := func(e simnet.Envelope) int {
			if corrupt[e.From] {
				return 0 // adversary traffic jumps the queue
			}
			return 1
		}
		return simnet.NewAdversarial(pri, uint64(len(corrupt))*8)
	}
	return simnet.NewRandom(cfg.seed ^ 0xA57)
}

// streamObserver adapts the configured public Observer to the runners'
// envelope hook, synthesizing round-advance and decision events. It
// returns nil when no observer is configured.
func streamObserver(cfg Config, correct []*core.Node) simnet.Observer {
	if cfg.observer == nil {
		return nil
	}
	observer := cfg.observer
	lastTime := 0
	decided := make([]bool, len(correct))
	return func(e simnet.Envelope) {
		if e.Depth > lastTime {
			lastTime = e.Depth
			observer(Event{Type: EventRound, Time: e.Depth, From: -1, To: -1})
		}
		observer(Event{
			Type: EventDeliver, Time: e.Depth,
			From: e.From, To: e.To,
			Kind: e.Msg.Kind(), Size: e.Msg.WireSize(),
		})
		// Decision detection: the delivery just handled by a correct node
		// may have completed its poll majority. The event time is the
		// node's recorded decision time rather than the current delivery's
		// depth: deterministic runners invoke observers live (the two
		// coincide at the majority-completing delivery), while the
		// concurrent runtimes replay buffered deliveries at quiescence —
		// when every node has long decided — so the depth guard plus
		// DecidedAt keep the emitted decision times exact there too.
		if e.To < len(correct) && correct[e.To] != nil && !decided[e.To] {
			if at := correct[e.To].DecidedAt(); at >= 0 && e.Depth >= at {
				decided[e.To] = true
				observer(Event{Type: EventDecision, Time: at, From: -1, To: e.To})
			}
		}
	}
}

func summarize(sc *core.Scenario, correct []*core.Node, m *simnet.Metrics) *AERResult {
	o := core.Evaluate(correct, sc.GString)
	res := &AERResult{
		Agreement:         o.Agreement(),
		GString:           hex.EncodeToString(sc.GString.Bytes()),
		Correct:           o.Correct,
		Decided:           o.Decided,
		DecidedGString:    o.DecidedG,
		DecidedOther:      o.DecidedOther,
		Time:              m.Rounds,
		LastDecision:      o.MaxDecisionAt,
		MeanBitsPerNode:   m.MeanSentBits(),
		MaxBitsPerNode:    m.MaxSentBits(),
		TotalMessages:     m.Delivered,
		MessagesByKind:    m.ByKind,
		SumCandidates:     o.SumCandidates,
		DistinctDecisions: o.DistinctDecisions,
		CertDeficits:      o.CertDeficits,
	}
	var pushes, covered float64
	for _, n := range correct {
		if n == nil {
			continue
		}
		res.AnswersDeferred += n.Stats().AnswersDeferred
		pushes += float64(n.Stats().PushesSent)
		if n.HasCandidate(sc.GString) {
			covered++
		}
		if at := n.DecidedAt(); at >= 0 {
			res.DecisionTimes = append(res.DecisionTimes, at)
		}
	}
	if o.Correct > 0 {
		res.PushesPerCorrect = pushes / float64(o.Correct)
		res.CandidateCoverage = covered / float64(o.Correct)
	}
	return res
}

// BAResult reports a full Byzantine Agreement run: the almost-everywhere
// phase (committee tree) followed by AER.
type BAResult struct {
	// AE summarizes the almost-everywhere phase.
	AE AEPhase
	// AER summarizes the everywhere phase.
	AER AERResult
	// GString is the hex encoding of the agreed string.
	GString string
	// TotalMeanBitsPerNode sums both phases' amortized communication —
	// the Figure 1(b) "Bits" entry for BA.
	TotalMeanBitsPerNode float64
	// TotalTime sums both phases' time.
	TotalTime int
}

// AEPhase summarizes the committee-tree phase.
type AEPhase struct {
	// KnowFrac is the fraction of correct nodes that learned gstring —
	// the almost-everywhere guarantee (AER needs > 3/4 of correct nodes).
	KnowFrac float64
	// MeanBitsPerNode is the phase's amortized communication.
	MeanBitsPerNode float64
	// Time is the phase's round count.
	Time int
}

// RunBA executes the composed protocol: the KSSV06-style committee tree
// generates and spreads gstring almost everywhere, then AER carries it to
// everyone. The almost-everywhere phase is synchronous (as in KSSV06); the
// AER phase runs under the configured model.
func RunBA(cfg Config) (*BAResult, error) {
	return RunBAContext(context.Background(), cfg)
}

// RunBAContext is RunBA with cancellation, checked before and between
// phases and inside the AER phase's runner.
func RunBAContext(ctx context.Context, cfg Config) (*BAResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	// An already-cancelled context must not pay for the committee phase,
	// which has no internal cancellation probe.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Corruption pattern shared by both phases (the adversary is
	// non-adaptive and corrupts nodes once).
	seedSc, err := core.NewScenario(cfg.params, cfg.seed, core.ScenarioConfig{
		CorruptFrac: cfg.coreCorruptFrac(),
		KnowFrac:    1,
		SharedJunk:  true,
		AdvBits:     0,
	})
	if err != nil {
		return nil, err
	}
	corrupt := seedSc.Corrupt

	aeParams := ae.Params{
		N:             cfg.n,
		CommitteeSize: cfg.params.QuorumSize,
		Bins:          ae.DefaultParams(cfg.n).Bins,
		StringBits:    cfg.params.StringBits,
		Seed:          cfg.params.SamplerSeed,
	}
	var mkByz func(id int) simnet.Node
	// Adaptive adversaries corrupt online through the scenario relay (AER
	// phase); the committee phase runs uncorrupted under them.
	if cfg.advName != AdversaryNone.String() && cfg.advName != AdversarySilent.String() &&
		adaptiveKind(cfg.advName) == "" {
		mkByz, err = ae.Poison(aeParams, cfg.seed)
		if err != nil {
			return nil, err
		}
	}
	aeRes, err := ae.Run(aeParams, cfg.seed, corrupt, mkByz)
	if err != nil {
		return nil, err
	}
	if aeRes.GString.IsZero() {
		return nil, fmt.Errorf("fastba: almost-everywhere phase failed to elect a global string")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	sc, err := core.ScenarioFromBeliefs(cfg.params, cfg.seed, corrupt, aeRes.GString, aeRes.Beliefs)
	if err != nil {
		return nil, err
	}
	aerRes, err := runAEROnScenario(ctx, cfg, sc)
	if err != nil {
		return nil, err
	}

	return &BAResult{
		AE: AEPhase{
			KnowFrac:        aeRes.KnowFrac,
			MeanBitsPerNode: aeRes.Metrics.MeanSentBits(),
			Time:            aeRes.Metrics.Rounds,
		},
		AER:                  *aerRes,
		GString:              aerRes.GString,
		TotalMeanBitsPerNode: aeRes.Metrics.MeanSentBits() + aerRes.MeanBitsPerNode,
		TotalTime:            aeRes.Metrics.Rounds + aerRes.Time,
	}, nil
}

// Baseline selects one of the comparison protocols of Figure 1.
type Baseline int

// Comparison protocols.
const (
	// BaselineKLST11 is the stylized load-balanced Õ(√n) a.e.→e. protocol.
	BaselineKLST11 Baseline = iota + 1
	// BaselineFlood is the everyone-broadcasts yardstick.
	BaselineFlood
	// BaselineRabin is the Rabin'83/PR10-class quadratic randomized BA.
	BaselineRabin
)

// String implements fmt.Stringer.
func (b Baseline) String() string {
	switch b {
	case BaselineKLST11:
		return "klst11"
	case BaselineFlood:
		return "flood"
	case BaselineRabin:
		return "rabin"
	default:
		return fmt.Sprintf("Baseline(%d)", int(b))
	}
}

// BaselineResult reports a baseline run in the same units as AERResult.
type BaselineResult struct {
	Agreement       bool
	Correct         int
	Decided         int
	Time            int
	MeanBitsPerNode float64
	MaxBitsPerNode  int64
	TotalMessages   int64
}

// RunBaseline executes a comparison protocol on the same population a
// RunAER call with this configuration would use. Baselines are synchronous
// (their round structure is intrinsic); the model option is ignored.
func RunBaseline(cfg Config, b Baseline) (*BaselineResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sc, err := core.NewScenario(cfg.params, cfg.seed, core.ScenarioConfig{
		CorruptFrac: cfg.corruptFrac,
		KnowFrac:    cfg.knowFrac,
		SharedJunk:  cfg.sharedJunk,
		AdvBits:     1.0 / 3,
	})
	if err != nil {
		return nil, err
	}
	var res *baseline.Result
	switch b {
	case BaselineKLST11:
		res = baseline.RunKLST11(sc)
	case BaselineFlood:
		res = baseline.RunFlood(sc)
	case BaselineRabin:
		res = baseline.RunRabin(sc, 0)
	default:
		return nil, fmt.Errorf("fastba: unknown baseline %v", b)
	}
	return &BaselineResult{
		Agreement:       res.Outcome.Agreement(),
		Correct:         res.Outcome.Correct,
		Decided:         res.Outcome.Decided,
		Time:            res.Outcome.MaxDecisionAt,
		MeanBitsPerNode: res.Metrics.MeanSentBits(),
		MaxBitsPerNode:  res.Metrics.MaxSentBits(),
		TotalMessages:   res.Metrics.Delivered,
	}, nil
}
