package fastba

import (
	"github.com/fastba/fastba/internal/scenario"
)

// Scenario describes a hostile-internet network scenario: a seeded
// topology model (full mesh, ring, Watts–Strogatz with rewiring, optional
// Zipf-weighted node load), a per-link latency/loss model lowered onto the
// fault-plan link machinery, a gossip relay that carries protocol traffic
// across non-adjacent links, and the trigger time for the adaptive
// adversaries. Attach one with WithScenario, sweep them with
// Sweep.Scenarios, fuzz them with FuzzConfig.ScenarioFrac. See DESIGN.md
// §11 for the model semantics and determinism invariants.
type Scenario = scenario.Spec

// Scenario topology and latency model names (Scenario.Topology,
// Scenario.Latency).
const (
	TopologyFull    = scenario.TopologyFull
	TopologyRing    = scenario.TopologyRing
	TopologyWS      = scenario.TopologyWS
	LatencyFixed    = scenario.LatencyFixed
	LatencyUniform  = scenario.LatencyUniform
	LatencyLongTail = scenario.LatencyLongTail
)

// WithScenario runs the protocol over the given network scenario: sends
// between non-adjacent nodes travel the topology through the gossip relay,
// the latency/loss model joins the run's fault plan as per-link faults,
// and an adaptive adversary (if selected by name) silences its chosen
// targets from the scenario's trigger time. A zero Scenario.Seed inherits
// the run seed, so scenario draws stay a pure function of the
// configuration. Rushing Byzantine strategies degrade to their non-rushing
// form under a scenario, exactly as they do over TCP.
func WithScenario(s Scenario) Option {
	return optionFunc(func(c *Config) {
		sc := s
		c.scenario = &sc
	})
}

// Adaptive adversary registry names. Unlike the static strategies, these
// corrupt online: at the scenario's TriggerAt they pick ⌊corruptFrac·n⌋
// targets and silence them completely — protocol sends and relay
// forwarding alike. They require a scenario (WithScenario) and leave the
// core population uncorrupted (the corruption budget is spent on the
// adaptive targets instead).
const (
	// AdversaryAdaptiveDegree silences the highest-degree nodes (ties by
	// Zipf weight): the structural hubs of the topology.
	AdversaryAdaptiveDegree = "adaptive-degree"
	// AdversaryAdaptiveTraffic silences the most-messaged nodes, ranked by
	// the delivery counts observed up to the trigger time — the online
	// traffic-volume adversary.
	AdversaryAdaptiveTraffic = "adaptive-traffic"
	// AdversaryAdaptiveOblivious silences a seeded-random target set at the
	// same trigger time: the non-adaptive baseline the adaptive variants
	// are measured against (BENCH_9.json).
	AdversaryAdaptiveOblivious = "adaptive-oblivious"
)

// adaptiveKind maps an adversary name to its scenario target-ranking kind
// ("" = not an adaptive adversary).
func adaptiveKind(name string) string {
	switch name {
	case AdversaryAdaptiveDegree:
		return scenario.RankDegree
	case AdversaryAdaptiveTraffic:
		return scenario.RankTraffic
	case AdversaryAdaptiveOblivious:
		return scenario.RankOblivious
	}
	return ""
}

// inertNode is the defensive maker target for the adaptive names: their
// corruption is realized by the scenario relay (silencing), never by node
// construction, so this node is never actually built in a valid run.
type inertNode struct{}

func (inertNode) Init(NodeContext)                     {}
func (inertNode) Deliver(NodeContext, NodeID, Message) {}

// The adaptive adversaries register like every other strategy, so they
// list in RegisteredAdversaries and sweep via Sweep.Adversaries; their
// behaviour lives in the scenario relay, keyed off the name.
func init() {
	inert := func(AdversaryEnv, int) ProtocolNode { return inertNode{} }
	mustRegister(AdversaryAdaptiveDegree, inert)
	mustRegister(AdversaryAdaptiveTraffic, inert)
	mustRegister(AdversaryAdaptiveOblivious, inert)
}
