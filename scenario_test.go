package fastba

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/fastba/fastba/internal/scenario"
)

// scenarioDigest summarizes a run over its order-independent fields only:
// decisions, per-kind counts, traffic and bit totals — never Time, Rounds
// or DecisionTimes, which the concurrent fabric does not reproduce.
func scenarioDigest(res *AERResult) string {
	h := sha256.New()
	fmt.Fprintf(h, "gstring=%s correct=%d decided=%d onG=%d other=%d distinct=%d certdef=%d\n",
		res.GString, res.Correct, res.Decided, res.DecidedGString, res.DecidedOther,
		res.DistinctDecisions, res.CertDeficits)
	fmt.Fprintf(h, "msgs=%d meanBits=%.6f maxBits=%d\n",
		res.TotalMessages, res.MeanBitsPerNode, res.MaxBitsPerNode)
	kinds := make([]string, 0, len(res.MessagesByKind))
	for k := range res.MessagesByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(h, "kind %s=%d\n", k, res.MessagesByKind[k])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestScenarioEndToEnd: a lossless WS scenario with the relay engaged
// decides everywhere on a deterministic runner, reproduces its digest
// exactly, and carries relay traffic.
func TestScenarioEndToEnd(t *testing.T) {
	cfg := NewConfig(48,
		WithSeed(7),
		WithModel(Async),
		WithKnowFrac(1),
		WithScenario(Scenario{Topology: TopologyWS, Degree: 6, Rewire: 0.2, ZipfS: 1.0, Latency: LatencyFixed, BaseDelay: 1}),
	)
	first, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Decided != first.Correct || first.DecidedOther > 0 {
		t.Fatalf("lossless scenario run did not fully decide gstring: %+v", first)
	}
	if first.MessagesByKind["relay"] == 0 {
		t.Fatalf("relay never engaged on a ws topology: %v", first.MessagesByKind)
	}
	rep := CheckInvariants(cfg, first)
	if !rep.OK() {
		t.Fatalf("oracles: %s", rep)
	}
	second, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scenarioDigest(first) != scenarioDigest(second) {
		t.Fatal("scenario run digest not reproducible on a deterministic runner")
	}
}

// TestScenarioSeedInheritance: a zero Scenario.Seed inherits the run seed,
// so different run seeds draw different topologies and the same run seed
// reproduces the same one.
func TestScenarioSeedInheritance(t *testing.T) {
	spec := Scenario{Topology: TopologyWS, Degree: 6, Rewire: 0.5}
	run := func(seed uint64) *AERResult {
		res, err := RunAER(NewConfig(32, WithSeed(seed), WithKnowFrac(1), WithScenario(spec)))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a1, a2, b := run(3), run(3), run(4)
	if scenarioDigest(a1) != scenarioDigest(a2) {
		t.Fatal("same run seed did not reproduce the scenario")
	}
	if a1.TotalMessages == b.TotalMessages && a1.MeanBitsPerNode == b.MeanBitsPerNode {
		t.Log("note: different run seeds produced identical traffic (possible but unlikely)")
	}
}

// TestSweepRejectsDisconnectedScenario pins the fix satellite: a sweep
// whose scenario axis contains a disconnecting topology fails at
// validation time with a descriptive error — not by hanging runs or
// tripping the termination oracle.
func TestSweepRejectsDisconnectedScenario(t *testing.T) {
	// Find a deterministically disconnecting (seed, spec) pair: degree 2
	// with full rewiring fragments 32-node rings for many seeds.
	var bad *Scenario
	for seed := uint64(1); seed < 200; seed++ {
		spec := Scenario{Topology: TopologyWS, Degree: 2, Rewire: 1.0, Seed: seed}
		if _, err := scenario.Compile(spec, 32); err != nil {
			bad = &spec
			break
		}
	}
	if bad == nil {
		t.Skip("no disconnecting seed found in range")
	}
	_, err := RunSuite(context.Background(), Suite{
		Sweep: Sweep{Ns: []int{32}, Scenarios: []Scenario{*bad}},
	})
	if err == nil {
		t.Fatal("sweep with a disconnected scenario expanded without error")
	}
	for _, want := range []string{"disconnected", "unreachable"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("disconnection error not descriptive: %v", err)
		}
	}
	// The same spec is rejected by a single run too.
	if _, runErr := RunAER(NewConfig(32, WithScenario(*bad))); runErr == nil {
		t.Fatal("RunAER accepted a disconnected scenario")
	}
}

// TestAdaptiveAdversaryRequiresScenario: the adaptive names are rejected
// without a scenario to rank targets from.
func TestAdaptiveAdversaryRequiresScenario(t *testing.T) {
	_, err := RunAER(NewConfig(32, WithAdversaryName(AdversaryAdaptiveDegree), WithCorruptFrac(0.1)))
	if err == nil || !strings.Contains(err.Error(), "requires a scenario") {
		t.Fatalf("adaptive adversary without scenario: %v", err)
	}
}

// TestAdaptiveAdversarySilences: an adaptive adversary leaves safety
// intact while the termination oracle is skipped (silencing is lossy);
// the degree variant must actually suppress traffic relative to the
// adversary-free run.
func TestAdaptiveAdversarySilences(t *testing.T) {
	spec := Scenario{Topology: TopologyWS, Degree: 6, Rewire: 0.2, ZipfS: 1.0, Seed: 5}
	base := NewConfig(48, WithSeed(7), WithKnowFrac(1), WithScenario(spec))
	clean, err := RunAER(base)
	if err != nil {
		t.Fatal(err)
	}
	adv := NewConfig(48, WithSeed(7), WithKnowFrac(1), WithScenario(spec),
		WithAdversaryName(AdversaryAdaptiveDegree), WithCorruptFrac(0.15))
	res, err := RunAER(adv)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckInvariants(adv, res)
	if !rep.OK() {
		t.Fatalf("adaptive adversary broke safety: %s", rep)
	}
	if _, skipped := rep.Skipped[OracleTermination]; !skipped {
		t.Fatalf("termination oracle not skipped under an adaptive adversary: %+v", rep)
	}
	if res.TotalMessages >= clean.TotalMessages {
		t.Fatalf("adaptive-degree silencing did not suppress traffic: %d vs clean %d",
			res.TotalMessages, clean.TotalMessages)
	}
}

// TestScenarioSweepLabels: the scenario axis lands in cells, labels and
// rendered reports.
func TestScenarioSweepLabels(t *testing.T) {
	rep, err := RunSuite(context.Background(), Suite{
		Name: "scen",
		Sweep: Sweep{
			Ns:        []int{24},
			Scenarios: []Scenario{{Topology: TopologyRing, Name: "ring24"}, {}},
			Options:   []Option{WithKnowFrac(1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("scenario axis did not expand: %d cells", len(rep.Cells))
	}
	if rep.Cells[0].Cell.Scenario != "ring24" || rep.Cells[1].Cell.Scenario != "full" {
		t.Fatalf("scenario labels wrong: %q / %q", rep.Cells[0].Cell.Scenario, rep.Cells[1].Cell.Scenario)
	}
	if !strings.Contains(rep.Cells[0].Cell.String(), "ring24") {
		t.Fatalf("cell label missing scenario: %s", rep.Cells[0].Cell)
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "ring24") {
		t.Fatalf("render missing scenario column:\n%s", sb.String())
	}
}

// TestScenarioFabricLarge is the at-scale acceptance probe: a seeded
// Watts–Strogatz scenario with the relay engaged completes on the
// goroutine fabric, keeps the safety oracles green, and reproduces its
// order-independent digest across invocations. The default n=256 keeps
// plain `go test ./...` inside the package timeout; CI's scenario-smoke
// job sets FASTBA_SCENARIO_N=1024 for the full n≥1000 run (tens of
// millions of deliveries — minutes of wall clock even at fanout 1).
func TestScenarioFabricLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large fabric run skipped in -short")
	}
	n := 256
	if s := os.Getenv("FASTBA_SCENARIO_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 16 {
			t.Fatalf("bad FASTBA_SCENARIO_N %q", s)
		}
		n = v
	}
	// Fanout 1: single-path relay. Redundant fanout multiplies traffic by
	// ~fanout^distance per message, which at n=1024 (≈98% of pairs
	// non-adjacent, mean distance ≈3) is tens of millions of frames; the
	// acceptance probe needs the relay mechanics, not the redundancy.
	cfg := NewConfig(n,
		WithSeed(1),
		WithModel(Goroutines),
		WithKnowFrac(1),
		WithScenario(Scenario{Topology: TopologyWS, Degree: 16, Rewire: 0.3, ZipfS: 1.0, Fanout: 1}),
	)
	first, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.DistinctDecisions > 1 || first.DecidedOther > 0 || first.CertDeficits > 0 {
		t.Fatalf("n=%d scenario run broke safety: %+v", n, first)
	}
	if first.Decided != first.Correct {
		t.Fatalf("n=%d lossless scenario run left %d of %d undecided", n, first.Correct-first.Decided, first.Correct)
	}
	if first.MessagesByKind["relay"] == 0 {
		t.Fatalf("relay never engaged at n=%d", n)
	}
	second, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if scenarioDigest(first) != scenarioDigest(second) {
		t.Fatalf("n=%d fabric scenario digest not reproducible across invocations", n)
	}
	t.Logf("n=%d: %d msgs (%d relay), digest %s", n, first.TotalMessages,
		first.MessagesByKind["relay"], scenarioDigest(first)[:16])
}
