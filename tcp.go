package fastba

import (
	"context"
	"encoding/hex"
	"sync"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/simnet"
)

// TCPResult reports one AER execution over real loopback TCP sockets.
// Communication is metered in actually-framed wire bytes. Time is
// wall-clock, plus a per-node logical clock: each node counts the messages
// it has handled, so decision "times" are delivery counts.
type TCPResult struct {
	Agreement      bool
	GString        string
	Correct        int
	Decided        int
	DecidedGString int
	DecidedOther   int
	// MeanBitsPerNode / MaxBitsPerNode count wire-frame bits actually
	// written, per node.
	MeanBitsPerNode float64
	MaxBitsPerNode  int64
	// LastDecision is the largest per-node decision time: the number of
	// messages the latest-deciding node had handled when it decided (the
	// network analogue of the simulators' round / causal-depth measure).
	LastDecision int
	// Wall is the elapsed wall-clock time until completion (or timeout).
	Wall time.Duration
	// TimedOut reports that not every correct node decided within the
	// timeout; the remaining fields describe the partial outcome. With a
	// lossy fault plan installed the run instead ends at network
	// quiescence (no surviving message unhandled), so a partial outcome
	// without TimedOut means the plan destroyed liveness — the expected
	// hostile-network shape, which the safety oracles still police.
	TimedOut bool
	// DistinctDecisions / CertDeficits are the oracle inputs (see
	// AERResult).
	DistinctDecisions int
	CertDeficits      int
	// Net carries the run's connection-supervision counters: dial/redial
	// churn, failure-detector transitions, shed frames, chaos strikes.
	Net NetStats
}

// RunTCP executes the same AER nodes a RunAER call with this configuration
// would simulate, but over real loopback TCP: one OS-level listener per
// node, length-prefixed binary frames, a lazily dialed full mesh. The
// configured timing model is ignored (the kernel schedules delivery);
// Byzantine strategies participate through the same registry, though
// custom message types without a wire codec are silently dropped, and
// rushing behaviours degrade to their non-rushing form. A zero timeout
// defaults to 60s. WithObserver receives deliveries after the run drains
// (concurrent runtimes buffer observations per node and fan them in at
// quiescence); Event.Time is the receiving node's delivery count.
func RunTCP(ctx context.Context, cfg Config, timeout time.Duration) (*TCPResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	sc, err := core.NewScenario(cfg.params, cfg.seed, core.ScenarioConfig{
		CorruptFrac: cfg.corruptFrac,
		KnowFrac:    cfg.knowFrac,
		SharedJunk:  cfg.sharedJunk,
		AdvBits:     1.0 / 3,
	})
	if err != nil {
		return nil, err
	}
	mkByz, err := byzMaker(cfg, sc)
	if err != nil {
		return nil, err
	}
	nodes, correct := sc.Build(mkByz)
	// The scenario lowers onto TCP exactly as onto the simulators: the
	// relay wraps the node vector (so gossip hops ride real sockets as
	// RelayMsg frames) and the link latency/loss model joins the injected
	// fault plan.
	nodes, plan, err := applyScenario(cfg, nodes)
	if err != nil {
		return nil, err
	}

	netOpts := cfg.net
	if cfg.observer != nil {
		// Link state transitions stream live (unlike deliveries, which the
		// concurrent runtimes buffer and fan in at quiescence): a suspect
		// event is only useful while the run it describes is still going.
		// The supervisor goroutines fire concurrently; serialize them.
		observer := cfg.observer
		var connMu sync.Mutex
		netOpts.OnConnEvent = func(ev netrun.ConnEvent) {
			var typ EventType
			switch ev.Kind {
			case netrun.ConnSuspected, netrun.ConnDown:
				typ = EventPeerSuspect
			case netrun.ConnRecovered:
				typ = EventPeerAlive
			case netrun.ConnRedialed:
				typ = EventReconnect
			default:
				return
			}
			connMu.Lock()
			defer connMu.Unlock()
			observer(Event{Type: typ, From: ev.From, To: ev.To, Kind: ev.Kind.String()})
		}
	}
	cluster, err := netrun.NewWithOptions(nodes, netOpts)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	// Propagate cancellation into cluster shutdown directly: closing the
	// listeners and connections unblocks dials and read loops immediately,
	// so a cancelled long-lived run tears its goroutines down promptly
	// instead of waiting out RunUntil's next poll.
	stopWatch := context.AfterFunc(ctx, cluster.Close)
	defer stopWatch()
	if !plan.IsZero() {
		cluster.InjectFaults(plan)
	}
	if cfg.observer != nil {
		observer := cfg.observer
		cluster.Observe(func(e simnet.Envelope) {
			observer(Event{
				Type: EventDeliver, Time: e.Depth,
				From: e.From, To: e.To,
				Kind: e.Msg.Kind(), Size: e.Msg.WireSize(),
			})
		})
	}

	start := time.Now()
	cluster.Start()
	allDecided := func() bool {
		for _, node := range correct {
			if node == nil {
				continue
			}
			if _, ok := node.Decided(); !ok {
				return false
			}
		}
		return true
	}
	// Under a plan that can destroy messages — a lossy fault plan, or a
	// chaos plan severing live sockets — "all correct nodes decided" may
	// never come true; network quiescence is then the other legitimate
	// end of the run (every surviving message handled, nothing in flight).
	stop := allDecided
	adaptive := adaptiveKind(cfg.advName) != "" && cfg.corruptFrac > 0
	if !plan.Lossless() || cfg.net.Chaos.Active() || adaptive {
		stop = func() bool { return allDecided() || cluster.Quiesced() }
	}
	runErr := cluster.RunUntil(ctx, stop, timeout)
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	wall := time.Since(start) // completion time, excluding the drain below
	// Drain the tail of the execution: deliveries (and the sends they
	// trigger) may still be in flight when the last node decides, and the
	// byte counters should cover them. Bounded in case a connection broke.
	cluster.AwaitQuiescence(2 * time.Second)
	netStats := cluster.NetStats()
	cluster.Close()

	o := core.Evaluate(correct, sc.GString)
	res := &TCPResult{
		Agreement:      o.Agreement(),
		GString:        hex.EncodeToString(sc.GString.Bytes()),
		Correct:        o.Correct,
		Decided:        o.Decided,
		DecidedGString: o.DecidedG,
		DecidedOther:   o.DecidedOther,
		LastDecision:   o.MaxDecisionAt,
		Wall:           wall,
		TimedOut:       runErr != nil,

		DistinctDecisions: o.DistinctDecisions,
		CertDeficits:      o.CertDeficits,
		Net:               netStats,
	}
	var total int64
	for _, b := range cluster.SentBytes() {
		bits := b * 8
		total += bits
		if bits > res.MaxBitsPerNode {
			res.MaxBitsPerNode = bits
		}
	}
	if len(nodes) > 0 {
		res.MeanBitsPerNode = float64(total) / float64(len(nodes))
	}
	return res, nil
}
