package fastba

// Transport conformance suite: every runtime that executes protocol nodes —
// the deterministic event-loop runners, the goroutine Fabric, the TCP
// cluster (internal/netrun) and the public RunTCP — must produce identical
// decisions and identical per-kind message counts on a seeded fault-free
// scenario.
//
// The scenario is chosen to make the message pattern order-independent so
// the counts are comparable across schedulers and real concurrency: with
// no Byzantine nodes and every correct node knowing gstring, each
// handler's sends are gated by monotone per-(x, s) state (forward-once,
// answer-once, one poll per candidate), so delivery order cannot change
// what is eventually sent — only when.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/fastba/fastba/internal/core"
	"github.com/fastba/fastba/internal/netrun"
	"github.com/fastba/fastba/internal/scenario"
	"github.com/fastba/fastba/internal/simnet"
)

// conformanceScenario builds the order-independent population: everyone
// correct, everyone knowledgeable.
func conformanceScenario(t *testing.T, n int, seed uint64) *core.Scenario {
	t.Helper()
	sc, err := core.NewScenario(core.DefaultParams(n), seed, core.ScenarioConfig{
		CorruptFrac: 0,
		KnowFrac:    1,
		SharedJunk:  true,
		AdvBits:     1.0 / 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// runOutcome is the cross-runtime comparable signature of one execution.
type runOutcome struct {
	decidedG  int
	decided   int
	correct   int
	delivered int64
	byKind    map[string]int64
	sentMsgs  []int64
}

func outcomeOf(sc *core.Scenario, correct []*core.Node, m *simnet.Metrics) runOutcome {
	o := core.Evaluate(correct, sc.GString)
	out := runOutcome{
		decidedG:  o.DecidedG,
		decided:   o.Decided,
		correct:   o.Correct,
		delivered: m.Delivered,
		byKind:    m.ByKind,
	}
	for i := range m.PerNode {
		out.sentMsgs = append(out.sentMsgs, m.PerNode[i].SentMsgs)
	}
	return out
}

func (a runOutcome) diff(b runOutcome) string {
	if a.correct != b.correct || a.decided != b.decided || a.decidedG != b.decidedG {
		return fmt.Sprintf("decisions differ: %d/%d/%d vs %d/%d/%d",
			a.decidedG, a.decided, a.correct, b.decidedG, b.decided, b.correct)
	}
	if a.delivered != b.delivered {
		return fmt.Sprintf("delivered differ: %d vs %d", a.delivered, b.delivered)
	}
	if len(a.byKind) != len(b.byKind) {
		return fmt.Sprintf("kind sets differ: %v vs %v", a.byKind, b.byKind)
	}
	for k, v := range a.byKind {
		if b.byKind[k] != v {
			return fmt.Sprintf("kind %q differs: %d vs %d (%v vs %v)", k, v, b.byKind[k], a.byKind, b.byKind)
		}
	}
	for i := range a.sentMsgs {
		if a.sentMsgs[i] != b.sentMsgs[i] {
			return fmt.Sprintf("node %d sent %d vs %d messages", i, a.sentMsgs[i], b.sentMsgs[i])
		}
	}
	return ""
}

func TestTransportConformance(t *testing.T) {
	const n, seed = 24, 11

	type runtimeCase struct {
		name string
		run  func(t *testing.T, sc *core.Scenario) runOutcome
	}
	cases := []runtimeCase{
		{"sync", func(t *testing.T, sc *core.Scenario) runOutcome {
			nodes, correct := sc.Build(nil)
			m := simnet.NewSync(nodes, sc.Corrupt).Run(200)
			return outcomeOf(sc, correct, m)
		}},
		{"async-fifo", func(t *testing.T, sc *core.Scenario) runOutcome {
			nodes, correct := sc.Build(nil)
			m := simnet.NewAsync(nodes, simnet.NewFIFO()).Run()
			return outcomeOf(sc, correct, m)
		}},
		{"async-random", func(t *testing.T, sc *core.Scenario) runOutcome {
			nodes, correct := sc.Build(nil)
			m := simnet.NewAsync(nodes, simnet.NewRandom(99)).Run()
			return outcomeOf(sc, correct, m)
		}},
		{"goroutines", func(t *testing.T, sc *core.Scenario) runOutcome {
			nodes, correct := sc.Build(nil)
			m := simnet.NewGo(nodes).Run()
			return outcomeOf(sc, correct, m)
		}},
		{"tcp-cluster", func(t *testing.T, sc *core.Scenario) runOutcome {
			nodes, correct := sc.Build(nil)
			cluster, err := netrun.New(nodes)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			cluster.Start()
			allDecided := func() bool {
				for _, node := range correct {
					if node == nil {
						continue
					}
					if _, ok := node.Decided(); !ok {
						return false
					}
				}
				return true
			}
			if err := cluster.RunUntil(context.Background(), allDecided, 60*time.Second); err != nil {
				t.Fatal(err)
			}
			if !cluster.AwaitQuiescence(60 * time.Second) {
				t.Fatal("TCP cluster did not quiesce")
			}
			cluster.Close()
			return outcomeOf(sc, correct, cluster.Metrics())
		}},
	}

	reference := cases[0].run(t, conformanceScenario(t, n, seed))
	if reference.decidedG != reference.correct || reference.correct != n {
		t.Fatalf("reference execution did not fully decide gstring: %+v", reference)
	}
	for _, tc := range cases[1:] {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t, conformanceScenario(t, n, seed))
			if d := reference.diff(got); d != "" {
				t.Fatalf("%s diverges from sync reference: %s", tc.name, d)
			}
		})
	}
}

// TestTransportConformanceFaults extends the conformance suite to hostile
// networks: fixed FaultPlan seeds run on every runtime.
//
// Lossless plans (duplication + delay/reorder) preserve the monotone-send
// argument — every message still arrives eventually, duplicates are
// deduplicated by per-sender state — so all five runtimes must reach the
// identical full-agreement decision set, even though each runtime
// realizes a different concrete fault schedule (per-link send indices
// follow its own delivery order).
//
// Lossy plans (drops, partitions, crashes) legitimately produce different
// decision subsets per runtime; what must coincide everywhere is the
// oracle verdict: safety (agreement, validity, certificates) clean on
// every runtime.
func TestTransportConformanceFaults(t *testing.T) {
	const n, seed = 24, 11

	type runtimeCase struct {
		name string
		run  func(t *testing.T, sc *core.Scenario, plan simnet.FaultPlan) (*core.Scenario, []*core.Node)
	}
	cases := []runtimeCase{
		{"sync", func(t *testing.T, sc *core.Scenario, plan simnet.FaultPlan) (*core.Scenario, []*core.Node) {
			nodes, correct := sc.Build(nil)
			r := simnet.NewSync(nodes, sc.Corrupt)
			r.InjectFaults(plan)
			r.Run(200)
			return sc, correct
		}},
		{"async-fifo", func(t *testing.T, sc *core.Scenario, plan simnet.FaultPlan) (*core.Scenario, []*core.Node) {
			nodes, correct := sc.Build(nil)
			r := simnet.NewAsync(nodes, simnet.NewFIFO())
			r.InjectFaults(plan)
			r.Run()
			return sc, correct
		}},
		{"async-random", func(t *testing.T, sc *core.Scenario, plan simnet.FaultPlan) (*core.Scenario, []*core.Node) {
			nodes, correct := sc.Build(nil)
			r := simnet.NewAsync(nodes, simnet.NewRandom(99))
			r.InjectFaults(plan)
			r.Run()
			return sc, correct
		}},
		{"goroutines", func(t *testing.T, sc *core.Scenario, plan simnet.FaultPlan) (*core.Scenario, []*core.Node) {
			nodes, correct := sc.Build(nil)
			r := simnet.NewGo(nodes)
			r.InjectFaults(plan)
			r.Run()
			return sc, correct
		}},
		{"tcp-cluster", func(t *testing.T, sc *core.Scenario, plan simnet.FaultPlan) (*core.Scenario, []*core.Node) {
			nodes, correct := sc.Build(nil)
			cluster, err := netrun.New(nodes)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			cluster.InjectFaults(plan)
			cluster.Start()
			// "All decided" may never come true on a lossy network;
			// quiescence is the other legitimate end of the run.
			if !cluster.AwaitQuiescence(60 * time.Second) {
				t.Fatal("TCP cluster did not quiesce under faults")
			}
			cluster.Close()
			return sc, correct
		}},
	}

	// safetyVerdict distills the cross-runtime comparable oracle verdict.
	safetyVerdict := func(sc *core.Scenario, correct []*core.Node) string {
		o := core.Evaluate(correct, sc.GString)
		switch {
		case o.DistinctDecisions > 1:
			return "agreement-violated"
		case o.DecidedOther > 0:
			return "validity-violated"
		case o.CertDeficits > 0:
			return "certificates-violated"
		default:
			return "safe"
		}
	}

	t.Run("lossless-identical-decisions", func(t *testing.T) {
		plan := simnet.FaultPlan{Seed: 3, DupProb: 0.25, DelayProb: 0.3, MaxDelay: 3}
		for _, tc := range cases {
			tc := tc
			t.Run(tc.name, func(t *testing.T) {
				sc, correct := tc.run(t, conformanceScenario(t, n, seed), plan)
				o := core.Evaluate(correct, sc.GString)
				if o.DecidedG != o.Correct || o.Correct != n {
					t.Fatalf("%s under lossless faults: %d/%d decided gstring (want all %d)",
						tc.name, o.DecidedG, o.Correct, n)
				}
				if v := safetyVerdict(sc, correct); v != "safe" {
					t.Fatalf("%s under lossless faults: %s", tc.name, v)
				}
			})
		}
	})

	t.Run("lossy-identical-verdicts", func(t *testing.T) {
		plans := []simnet.FaultPlan{
			{Seed: 5, DropProb: 0.15, Partitions: []simnet.Partition{{A: []simnet.NodeID{0, 1, 2, 3}, From: 2, Until: 6}}},
			{Seed: 9, DropProb: 0.1, Crashes: []simnet.Crash{{Node: 1, At: 0}, {Node: 2, At: 3, RecoverAt: 8}}},
		}
		for pi, plan := range plans {
			for _, tc := range cases {
				tc, plan := tc, plan
				t.Run(fmt.Sprintf("plan%d-%s", pi, tc.name), func(t *testing.T) {
					sc, correct := tc.run(t, conformanceScenario(t, n, seed), plan)
					if v := safetyVerdict(sc, correct); v != "safe" {
						t.Fatalf("%s under lossy plan %d: %s", tc.name, pi, v)
					}
				})
			}
		}
	})

	// The public entry point agrees: RunTCP with a lossless plan decides
	// everywhere; with a lossy plan it ends at quiescence with clean
	// safety verdicts.
	t.Run("run-tcp", func(t *testing.T) {
		lossless := NewConfig(16, WithSeed(11), WithAdversary(AdversaryNone), WithKnowFrac(1),
			WithFaults(FaultPlan{Seed: 3, DupProb: 0.25, DelayProb: 0.3, MaxDelay: 3}))
		res, err := RunTCP(context.Background(), lossless, 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut || !res.Agreement || res.DistinctDecisions != 1 || res.CertDeficits != 0 {
			t.Fatalf("lossless TCP run: %+v", res)
		}
		lossy := NewConfig(16, WithSeed(11), WithAdversary(AdversaryNone), WithKnowFrac(1),
			WithFaults(FaultPlan{Seed: 5, DropProb: 0.2}))
		res, err = RunTCP(context.Background(), lossy, 60*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("lossy TCP run should end at quiescence, not timeout: %+v", res)
		}
		if res.DistinctDecisions > 1 || res.DecidedOther > 0 || res.CertDeficits > 0 {
			t.Fatalf("lossy TCP run broke safety: %+v", res)
		}
	})
}

// TestTransportConformanceScenario extends the conformance suite to the
// scenario layer: a lossless network scenario — Watts–Strogatz topology,
// Zipf load, fixed per-link latency, gossip relay — must produce identical
// decisions AND identical per-kind message counts (relay hops included) on
// all five runtimes. This is the payoff of the strictly distance-decreasing
// relay: the forwarding DAG of every (origin, dest) pair is a pure function
// of the topology, so which nodes transmit — and to whom — never depends on
// delivery order.
func TestTransportConformanceScenario(t *testing.T) {
	const n, seed = 24, 11
	spec := scenario.Spec{
		Topology: scenario.TopologyWS, Degree: 6, Rewire: 0.2, ZipfS: 1.0,
		Latency: scenario.LatencyFixed, BaseDelay: 1, Seed: 13,
	}
	comp, err := scenario.Compile(spec, n)
	if err != nil {
		t.Fatal(err)
	}
	plan := simnet.FaultPlan{Seed: spec.Seed, Links: comp.Links}

	build := func(t *testing.T) ([]simnet.Node, []*core.Node) {
		sc := conformanceScenario(t, n, seed)
		nodes, correct := sc.Build(nil)
		return scenario.Wrap(nodes, comp, scenario.WrapConfig{}), correct
	}
	gstring := conformanceScenario(t, n, seed).GString

	type runtimeCase struct {
		name string
		run  func(t *testing.T) runOutcome
	}
	outcome := func(correct []*core.Node, m *simnet.Metrics) runOutcome {
		o := core.Evaluate(correct, gstring)
		out := runOutcome{
			decidedG: o.DecidedG, decided: o.Decided, correct: o.Correct,
			delivered: m.Delivered, byKind: m.ByKind,
		}
		for i := range m.PerNode {
			out.sentMsgs = append(out.sentMsgs, m.PerNode[i].SentMsgs)
		}
		return out
	}
	cases := []runtimeCase{
		{"sync", func(t *testing.T) runOutcome {
			nodes, correct := build(t)
			r := simnet.NewSync(nodes, make([]bool, n))
			r.InjectFaults(plan)
			return outcome(correct, r.Run(400))
		}},
		{"async-fifo", func(t *testing.T) runOutcome {
			nodes, correct := build(t)
			r := simnet.NewAsync(nodes, simnet.NewFIFO())
			r.InjectFaults(plan)
			return outcome(correct, r.Run())
		}},
		{"async-random", func(t *testing.T) runOutcome {
			nodes, correct := build(t)
			r := simnet.NewAsync(nodes, simnet.NewRandom(99))
			r.InjectFaults(plan)
			return outcome(correct, r.Run())
		}},
		{"goroutines", func(t *testing.T) runOutcome {
			nodes, correct := build(t)
			r := simnet.NewGo(nodes)
			r.InjectFaults(plan)
			return outcome(correct, r.Run())
		}},
		{"tcp-cluster", func(t *testing.T) runOutcome {
			nodes, correct := build(t)
			cluster, err := netrun.New(nodes)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Close()
			cluster.InjectFaults(plan)
			cluster.Start()
			allDecided := func() bool {
				for _, node := range correct {
					if node == nil {
						continue
					}
					if _, ok := node.Decided(); !ok {
						return false
					}
				}
				return true
			}
			if err := cluster.RunUntil(context.Background(), allDecided, 60*time.Second); err != nil {
				t.Fatal(err)
			}
			if !cluster.AwaitQuiescence(60 * time.Second) {
				t.Fatal("TCP cluster did not quiesce under a scenario")
			}
			cluster.Close()
			return outcome(correct, cluster.Metrics())
		}},
	}

	reference := cases[0].run(t)
	if reference.decidedG != reference.correct || reference.correct != n {
		t.Fatalf("scenario reference execution did not fully decide gstring: %+v", reference)
	}
	if reference.byKind["relay"] == 0 {
		t.Fatalf("relay never engaged on the conformance topology: %v", reference.byKind)
	}
	for _, tc := range cases[1:] {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t)
			if d := reference.diff(got); d != "" {
				t.Fatalf("%s diverges from sync reference under a scenario: %s", tc.name, d)
			}
		})
	}
}

// TestTransportConformanceRunTCP closes the loop at the public API: RunTCP
// executes the same configuration RunAER simulates, over real sockets, and
// must reach the same decisions with a meaningful decision time.
func TestTransportConformanceRunTCP(t *testing.T) {
	cfg := NewConfig(16, WithSeed(11), WithAdversary(AdversaryNone), WithKnowFrac(1))
	sim, err := RunAER(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTCP(context.Background(), cfg, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || !res.Agreement {
		t.Fatalf("TCP run failed: %+v", res)
	}
	if res.Decided != sim.Decided || res.DecidedGString != sim.DecidedGString || res.GString != sim.GString {
		t.Fatalf("TCP decisions diverge from simulation: %+v vs %+v", res, sim)
	}
	if res.LastDecision <= 0 {
		t.Fatalf("TCP decision time not plumbed: LastDecision = %d", res.LastDecision)
	}
}
